"""Shared infrastructure for the experiment benchmarks.

Each benchmark module reproduces one experiment of DESIGN.md's
per-experiment index.  Timing is handled by pytest-benchmark; the
*shape* data the paper's theorems predict (type-sizes, blow-up factors,
slack counts) is recorded through :func:`record_row` and printed as
experiment tables in the terminal summary, so

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timing table and the reproduction tables.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import pytest

from repro.runtime import Budget

_TABLES: "OrderedDict[str, dict]" = OrderedDict()

#: Per-test governor defaults — generous enough that every benchmark in
#: the sweep completes unchanged, tight enough that a regression (or a
#: hostile parameter bump) fails deterministically with a one-line
#: :class:`~repro.errors.BudgetExceededError` instead of hanging the run.
DEFAULT_BENCH_TIMEOUT = 600.0
DEFAULT_BENCH_MAX_STATES = 50_000_000


def _env_limit(name: str, default: float | int, cast):
    """Read a governor limit from the environment; ``0``/``none`` disables."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw.strip().lower() in ("", "0", "none", "off"):
        return None
    return cast(raw)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "ungoverned: opt this benchmark out of the ambient per-test Budget "
        "(needed when the benchmark itself measures governor overhead)",
    )


@pytest.fixture(autouse=True)
def bench_budget(request):
    """Ambient per-test :class:`repro.runtime.Budget` for every benchmark.

    Override with ``REPRO_BENCH_TIMEOUT`` / ``REPRO_BENCH_MAX_STATES``
    (seconds / states; ``0`` or ``none`` disables that limit).
    """
    if request.node.get_closest_marker("ungoverned"):
        yield None
        return
    budget = Budget(
        timeout=_env_limit("REPRO_BENCH_TIMEOUT", DEFAULT_BENCH_TIMEOUT, float),
        max_states=_env_limit(
            "REPRO_BENCH_MAX_STATES", DEFAULT_BENCH_MAX_STATES, int
        ),
    )
    with budget:
        yield budget


def record_row(experiment: str, row: dict, note: str = "") -> None:
    """Add one row to *experiment*'s reproduction table.

    ``row`` is an ordered mapping of column name to value; all rows of one
    experiment should share the same columns.
    """
    table = _TABLES.setdefault(experiment, {"note": note, "rows": []})
    if note:
        table["note"] = note
    table["rows"].append(row)


@pytest.fixture
def record():
    """Fixture handle for :func:`record_row`."""
    return record_row


def run_timed(benchmark, func, *args, rounds: int = 1, **kwargs):
    """Run *func* under pytest-benchmark and return ``(result, seconds)``.

    Heavy constructions use ``rounds=1`` so the sweep stays fast; the
    mean time still lands in the benchmark table.
    """
    result = benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=rounds, iterations=1
    )
    seconds = float(benchmark.stats.stats.mean) if benchmark.stats else float("nan")
    return result, seconds


def _format_table(rows: list[dict]) -> list[str]:
    columns = list(rows[0])
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    lines = [header, sep]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return lines


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 72)
    write("REPRODUCTION TABLES (paper-shape measurements)")
    write("=" * 72)
    for experiment, table in _TABLES.items():
        write("")
        write(f"--- {experiment} ---")
        if table["note"]:
            write(table["note"])
        if table["rows"]:
            for line in _format_table(table["rows"]):
                write("  " + line)
