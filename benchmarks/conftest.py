"""Shared infrastructure for the experiment benchmarks.

Each benchmark module reproduces one experiment of DESIGN.md's
per-experiment index.  Timing is handled by pytest-benchmark; the
*shape* data the paper's theorems predict (type-sizes, blow-up factors,
slack counts) is recorded through :func:`record_row` and printed as
experiment tables in the terminal summary, so

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timing table and the reproduction tables.

Since PR 2 every run additionally lands in ``BENCH_kernels.json`` (path
overridable via ``REPRO_BENCH_JSON``): :func:`run_timed` routes every
timing through :func:`record_bench`, which records machine-readable rows
(op, n, wall time, states, cache hits), and the reproduction tables are
dumped alongside — so the repo's perf trajectory is diffable from this
PR onward.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict

import pytest

from repro.runtime import Budget
from repro.runtime.budget import current_budget
from repro.strings.kernels import cache_stats

_TABLES: "OrderedDict[str, dict]" = OrderedDict()
_BENCH_ROWS: list[dict] = []

#: Default output path of the machine-readable results (repo root).
BENCH_JSON_DEFAULT = os.path.join(os.path.dirname(__file__), "..", "BENCH_kernels.json")

#: Per-test governor defaults — generous enough that every benchmark in
#: the sweep completes unchanged, tight enough that a regression (or a
#: hostile parameter bump) fails deterministically with a one-line
#: :class:`~repro.errors.BudgetExceededError` instead of hanging the run.
DEFAULT_BENCH_TIMEOUT = 600.0
DEFAULT_BENCH_MAX_STATES = 50_000_000


def _env_limit(name: str, default: float | int, cast):
    """Read a governor limit from the environment; ``0``/``none`` disables."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw.strip().lower() in ("", "0", "none", "off"):
        return None
    return cast(raw)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "ungoverned: opt this benchmark out of the ambient per-test Budget "
        "(needed when the benchmark itself measures governor overhead)",
    )


@pytest.fixture(autouse=True)
def bench_budget(request):
    """Ambient per-test :class:`repro.runtime.Budget` for every benchmark.

    Override with ``REPRO_BENCH_TIMEOUT`` / ``REPRO_BENCH_MAX_STATES``
    (seconds / states; ``0`` or ``none`` disables that limit).
    """
    if request.node.get_closest_marker("ungoverned"):
        yield None
        return
    budget = Budget(
        timeout=_env_limit("REPRO_BENCH_TIMEOUT", DEFAULT_BENCH_TIMEOUT, float),
        max_states=_env_limit(
            "REPRO_BENCH_MAX_STATES", DEFAULT_BENCH_MAX_STATES, int
        ),
    )
    with budget:
        yield budget


def record_row(experiment: str, row: dict, note: str = "") -> None:
    """Add one row to *experiment*'s reproduction table.

    ``row`` is an ordered mapping of column name to value; all rows of one
    experiment should share the same columns.
    """
    table = _TABLES.setdefault(experiment, {"note": note, "rows": []})
    if note:
        table["note"] = note
    table["rows"].append(row)


@pytest.fixture
def record():
    """Fixture handle for :func:`record_row`."""
    return record_row


def record_bench(
    op: str,
    *,
    n=None,
    seconds: float | None = None,
    states: int | None = None,
    cache_hits: int | None = None,
    **extra,
) -> None:
    """Shared machine-readable writer: one structured result row destined
    for ``BENCH_kernels.json``.

    Every benchmark module writes through here — either explicitly or via
    :func:`run_timed` — so the JSON schema stays uniform across the suite.
    """
    row: dict = {"op": op, "n": n, "seconds": seconds, "states": states,
                 "cache_hits": cache_hits}
    row.update(extra)
    _BENCH_ROWS.append(row)


def _total_cache_hits() -> int:
    return sum(stats["hits"] for stats in cache_stats().values())


def run_timed(benchmark, func, *args, rounds: int = 1, **kwargs):
    """Run *func* under pytest-benchmark and return ``(result, seconds)``.

    Heavy constructions use ``rounds=1`` so the sweep stays fast; the
    mean time still lands in the benchmark table.  Each call also records
    a structured row (op, wall time, budget states, kernel cache hits)
    through :func:`record_bench`.
    """
    hits_before = _total_cache_hits()
    budget = current_budget()
    states_before = budget.states if budget is not None else None
    result = benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=rounds, iterations=1
    )
    seconds = float(benchmark.stats.stats.mean) if benchmark.stats else float("nan")
    record_bench(
        getattr(benchmark, "name", getattr(func, "__name__", str(func))),
        seconds=seconds,
        states=(budget.states - states_before) if budget is not None else None,
        cache_hits=_total_cache_hits() - hits_before,
    )
    return result, seconds


def _format_table(rows: list[dict]) -> list[str]:
    columns = list(rows[0])
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    sep = "  ".join("-" * widths[col] for col in columns)
    lines = [header, sep]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return lines


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    _write_bench_json()
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 72)
    write("REPRODUCTION TABLES (paper-shape measurements)")
    write("=" * 72)
    for experiment, table in _TABLES.items():
        write("")
        write(f"--- {experiment} ---")
        if table["note"]:
            write(table["note"])
        if table["rows"]:
            for line in _format_table(table["rows"]):
                write("  " + line)


def _write_bench_json() -> None:
    """Dump the structured rows and reproduction tables to
    ``BENCH_kernels.json`` (set ``REPRO_BENCH_JSON`` to redirect, or to
    ``none`` to skip)."""
    if not _BENCH_ROWS and not _TABLES:
        return
    path = os.environ.get("REPRO_BENCH_JSON", BENCH_JSON_DEFAULT)
    if path.strip().lower() in ("", "0", "none", "off"):
        return
    payload = {
        "schema": 1,
        "results": _BENCH_ROWS,
        "tables": {
            name: {"note": table["note"], "rows": table["rows"]}
            for name, table in _TABLES.items()
        },
        "cache": cache_stats(),
    }
    with open(os.path.abspath(path), "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
