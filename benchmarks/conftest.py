"""Pytest wiring for the experiment benchmarks.

Each benchmark module reproduces one experiment of DESIGN.md's
per-experiment index.  Timing is handled by pytest-benchmark; the
*shape* data the paper's theorems predict (type-sizes, blow-up factors,
slack counts) is recorded through :func:`record_row` and printed as
experiment tables in the terminal summary, so

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timing table and the reproduction tables.

Since PR 2 every run additionally lands in ``BENCH_kernels.json`` (path
overridable via ``REPRO_BENCH_JSON``): :func:`run_timed` routes every
timing through :func:`record_bench`, which records machine-readable rows
(op, n, wall time, states, cache hits), and the reproduction tables are
dumped alongside — so the repo's perf trajectory is diffable from this
PR onward.  Under ``REPRO_BENCH_TRACE=1`` each timed row additionally
embeds the span tree of the measured call (see ``docs/OBSERVABILITY.md``).

The reusable machinery lives in :mod:`benchmarks._util`; this module
only holds the pytest hooks and fixtures, and re-exports the helper
names so existing ``from benchmarks.conftest import run_timed``-style
imports keep working.
"""

from __future__ import annotations

import pytest

from benchmarks._util import (
    BENCH_JSON_DEFAULT,
    DEFAULT_BENCH_MAX_STATES,
    DEFAULT_BENCH_TIMEOUT,
    _TABLES,
    env_limit,
    format_table,
    record_bench,
    record_row,
    run_timed,
    trace_enabled,
    write_bench_json,
)
from repro.runtime import Budget

__all__ = [
    "BENCH_JSON_DEFAULT",
    "DEFAULT_BENCH_MAX_STATES",
    "DEFAULT_BENCH_TIMEOUT",
    "env_limit",
    "format_table",
    "record_bench",
    "record_row",
    "run_timed",
    "trace_enabled",
    "write_bench_json",
]


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "ungoverned: opt this benchmark out of the ambient per-test Budget "
        "(needed when the benchmark itself measures governor overhead)",
    )


@pytest.fixture(autouse=True)
def bench_budget(request):
    """Ambient per-test :class:`repro.runtime.Budget` for every benchmark.

    Override with ``REPRO_BENCH_TIMEOUT`` / ``REPRO_BENCH_MAX_STATES``
    (seconds / states; ``0`` or ``none`` disables that limit).
    """
    if request.node.get_closest_marker("ungoverned"):
        yield None
        return
    budget = Budget(
        timeout=env_limit("REPRO_BENCH_TIMEOUT", DEFAULT_BENCH_TIMEOUT, float),
        max_states=env_limit(
            "REPRO_BENCH_MAX_STATES", DEFAULT_BENCH_MAX_STATES, int
        ),
    )
    with budget:
        yield budget


@pytest.fixture
def record():
    """Fixture handle for :func:`record_row`."""
    return record_row


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    write_bench_json()
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 72)
    write("REPRODUCTION TABLES (paper-shape measurements)")
    write("=" * 72)
    for experiment, table in _TABLES.items():
        write("")
        write(f"--- {experiment} ---")
        if table["note"]:
            write(table["note"])
        if table["rows"]:
            for line in format_table(table["rows"]):
                write("  " + line)
