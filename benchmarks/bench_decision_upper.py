"""EXP-3.5 — deciding "is this the minimal upper XSD-approximation?".

Paper claim (Theorem 3.5): the problem is PSPACE-complete; our checker is
the exact deterministic equivalent (construct + compare via Lemma 3.3).

Reproduction: positive instances (the construction's own outputs, also
after minimization) and negative instances (a universal overshoot; a
non-containing schema) across sizes; record decision times.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import is_minimal_upper_approximation
from repro.core.upper import minimal_upper_approximation
from repro.families.random_schemas import random_edtd
from repro.schemas.minimize import minimize_single_type
from repro.schemas.st_edtd import SingleTypeEDTD

EXPERIMENT = "EXP-3.5  deciding minimal-upper-approximation-ness"
NOTE = "positive and negative instances decided exactly"


def _universal(alphabet) -> SingleTypeEDTD:
    from repro.strings.builders import sigma_star

    types = {("u", a) for a in alphabet}
    star = sigma_star(types)
    return SingleTypeEDTD(
        alphabet=alphabet,
        types=types,
        rules={t: star for t in types},
        starts=types,
        mu={("u", a): a for a in alphabet},
    )


@pytest.mark.parametrize("num_types", [4, 6, 8])
def test_positive_instances(num_types, record, benchmark):
    edtd = random_edtd(random.Random(350 + num_types), num_labels=3, num_types=num_types)
    candidate = minimize_single_type(minimal_upper_approximation(edtd))
    answer, seconds = run_timed(
        benchmark, is_minimal_upper_approximation, candidate, edtd
    )
    assert answer is True
    record(
        EXPERIMENT,
        {
            "instance": f"minimized-upper({num_types})",
            "candidate_types": len(candidate.types),
            "answer": answer,
            "decide_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_negative_universal_overshoot(record, benchmark):
    edtd = random_edtd(random.Random(77), num_labels=3, num_types=5)
    candidate = _universal(edtd.alphabet)
    answer, seconds = run_timed(
        benchmark, is_minimal_upper_approximation, candidate, edtd
    )
    assert answer is False
    record(
        EXPERIMENT,
        {
            "instance": "universal-overshoot",
            "candidate_types": len(candidate.types),
            "answer": answer,
            "decide_s": f"{seconds:.4f}",
        },
    )


def test_negative_not_containing(record, benchmark):
    edtd = random_edtd(random.Random(78), num_labels=2, num_types=5)
    label = sorted(edtd.alphabet)[0]
    candidate = SingleTypeEDTD(
        alphabet=edtd.alphabet,
        types={"only"},
        rules={"only": "~"},
        starts={"only"},
        mu={"only": label},
    )
    answer, seconds = run_timed(
        benchmark, is_minimal_upper_approximation, candidate, edtd
    )
    assert answer is False
    record(
        EXPERIMENT,
        {
            "instance": "non-containing",
            "candidate_types": 1,
            "answer": answer,
            "decide_s": f"{seconds:.4f}",
        },
    )
