"""EXP-K — PR-2 bitmask kernel speedups: old frozenset loops vs. the
integer-coded kernels of :mod:`repro.strings.kernels`.

Acceptance measurements for the kernels PR:

* ``determinize`` of the ``theorem_3_2_family`` type automaton at n=14
  (the paper's exponential blow-up instance) — kernel vs. the preserved
  reference loop, required >= 5x.
* ``edtd_includes`` on the benchmark EDTD pairs of
  ``bench_inclusion.py`` — worklist saturation with early exit vs. the
  round-based reference, required >= 5x in aggregate.
* ``moore_partition`` (Hopcroft) vs. the quadratic Moore reference —
  informational.
* the memo-cache amortization of repeated ``as_min_dfa`` — informational.

Set ``REPRO_BENCH_SMOKE=1`` to run a small-n slice (used by the CI bench
smoke job): same code paths, tiny instances, no speedup assertions —
machine-noise-proof while still catching kernel regressions and
accidental quadratic re-introductions via the ambient budget.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import record_bench, run_timed
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import theorem_3_2_family
from repro.families.random_schemas import random_edtd
from repro.schemas.type_automaton import type_automaton
from repro.strings.determinize import determinize, determinize_reference
from repro.strings.kernels import cache_stats, clear_caches
from repro.strings.minimize import moore_partition, moore_partition_reference
from repro.strings.ops import as_min_dfa
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_difference_empty_reference,
    bta_from_edtd,
)

EXPERIMENT = "EXP-K  bitmask kernel speedups (old frozenset loops vs PR-2 kernels)"
NOTE = "old = pre-PR reference implementations, preserved as differential oracles"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").strip().lower() in ("1", "true", "yes")

#: Family parameter for the determinize blow-up measurement (2^n subsets).
DETERMINIZE_N = 8 if SMOKE else 14
#: Rounds for best-of timing of the old/new comparison.
ROUNDS = 1 if SMOKE else 3
#: Benchmark EDTD pairs (same seeds/sizes as bench_inclusion.py).
INCLUSION_TYPES = [3, 5] if SMOKE else [3, 5, 7, 9]
#: Family parameter for the Hopcroft-vs-Moore comparison.
MINIMIZE_N = 5 if SMOKE else 9


def _best_of(func, *args, rounds: int = ROUNDS):
    """Return ``(result, best_seconds)`` over *rounds* runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - start)
    return result, best


@pytest.mark.ungoverned
def test_determinize_speedup(record, benchmark):
    """Kernel subset construction vs. the reference frozenset loop on the
    theorem-3.2 exponential instance (ungoverned: the vectorized fast
    path only engages without an ambient budget, matching library use)."""
    nfa = type_automaton(theorem_3_2_family(DETERMINIZE_N))
    determinize(nfa)  # warm-up (chunk tables, allocator)

    new_dfa, _ = run_timed(benchmark, determinize, nfa, rounds=ROUNDS)
    new_seconds = float(benchmark.stats.stats.min)
    old_dfa, old_seconds = _best_of(determinize_reference, nfa)

    assert new_dfa.states == old_dfa.states
    assert new_dfa.transitions == old_dfa.transitions
    assert new_dfa.finals == old_dfa.finals
    speedup = old_seconds / max(new_seconds, 1e-9)
    record_bench(
        "determinize_speedup",
        n=DETERMINIZE_N,
        seconds=new_seconds,
        states=len(new_dfa.states),
        old_seconds=old_seconds,
        speedup=round(speedup, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "determinize",
            "n": DETERMINIZE_N,
            "dfa_states": len(new_dfa.states),
            "new_s": f"{new_seconds:.4f}",
            "old_s": f"{old_seconds:.4f}",
            "speedup": f"{speedup:.1f}x",
        },
        note=NOTE,
    )
    if not SMOKE:
        assert speedup >= 5.0, (
            f"determinize kernel speedup regressed to {speedup:.1f}x "
            f"(old {old_seconds:.3f}s vs new {new_seconds:.3f}s)"
        )


@pytest.mark.ungoverned
def test_edtd_inclusion_speedup(record, benchmark):
    """On-the-fly worklist inclusion vs. the round-based reference on the
    benchmark EDTD pairs of bench_inclusion.py."""
    pairs = []
    for num_types in INCLUSION_TYPES:
        rng = random.Random(3300 + num_types)
        sub = random_edtd(rng, num_labels=3, num_types=num_types)
        sup = minimal_upper_approximation(sub)
        pairs.append((num_types, bta_from_edtd(sub), bta_from_edtd(sup)))

    def run_all_new():
        return [bta_difference_empty(left, right) for _, left, right in pairs]

    answers, _ = run_timed(benchmark, run_all_new, rounds=ROUNDS)
    new_total = float(benchmark.stats.stats.min)
    old_total = 0.0
    for (num_types, left, right), new_answer in zip(pairs, answers):
        old_answer, old_seconds = _best_of(
            bta_difference_empty_reference, left, right
        )
        new_answer_single, new_seconds = _best_of(
            bta_difference_empty, left, right
        )
        assert new_answer == new_answer_single == old_answer is True
        old_total += old_seconds
        pair_speedup = old_seconds / max(new_seconds, 1e-9)
        record_bench(
            "edtd_includes_speedup",
            n=num_types,
            seconds=new_seconds,
            old_seconds=old_seconds,
            speedup=round(pair_speedup, 2),
        )
        record(
            EXPERIMENT,
            {
                "op": "edtd_includes",
                "n": num_types,
                "dfa_states": "",
                "new_s": f"{new_seconds:.4f}",
                "old_s": f"{old_seconds:.4f}",
                "speedup": f"{pair_speedup:.1f}x",
            },
            note=NOTE,
        )

    aggregate = old_total / max(new_total, 1e-9)
    record_bench(
        "edtd_includes_speedup_aggregate",
        n=len(pairs),
        seconds=new_total,
        old_seconds=old_total,
        speedup=round(aggregate, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "edtd_includes (aggregate)",
            "n": len(pairs),
            "dfa_states": "",
            "new_s": f"{new_total:.4f}",
            "old_s": f"{old_total:.4f}",
            "speedup": f"{aggregate:.1f}x",
        },
        note=NOTE,
    )
    if not SMOKE:
        assert aggregate >= 5.0, (
            f"edtd_includes kernel speedup regressed to {aggregate:.1f}x"
        )


@pytest.mark.ungoverned
def test_hopcroft_vs_moore(record, benchmark):
    """Hopcroft refinement vs. the quadratic Moore loop (informational —
    the asymptotic gap only opens on large DFAs)."""
    dfa = determinize(
        type_automaton(theorem_3_2_family(MINIMIZE_N))
    ).completed(type_automaton(theorem_3_2_family(MINIMIZE_N)).alphabet)
    initial = {state: (state in dfa.finals) for state in dfa.states}

    fast, _ = run_timed(
        benchmark, moore_partition, dfa.states, dfa.alphabet,
        dfa.transitions, initial, rounds=ROUNDS,
    )
    new_seconds = float(benchmark.stats.stats.min)
    slow, old_seconds = _best_of(
        moore_partition_reference, dfa.states, dfa.alphabet,
        dfa.transitions, initial,
    )
    assert fast == slow
    speedup = old_seconds / max(new_seconds, 1e-9)
    record_bench(
        "minimize_speedup",
        n=MINIMIZE_N,
        seconds=new_seconds,
        states=len(dfa.states),
        old_seconds=old_seconds,
        speedup=round(speedup, 2),
    )
    record(
        EXPERIMENT,
        {
            "op": "moore_partition",
            "n": MINIMIZE_N,
            "dfa_states": len(dfa.states),
            "new_s": f"{new_seconds:.4f}",
            "old_s": f"{old_seconds:.4f}",
            "speedup": f"{speedup:.1f}x",
        },
        note=NOTE,
    )


def test_memo_cache_amortization(record, benchmark):
    """Warm-cache ``as_min_dfa`` hits skip the whole pipeline; the hit
    counters land in BENCH_kernels.json's cache section."""
    clear_caches()
    pattern = "(a | b)*, a, (a | b), (a | b), (a | b)"
    _, cold_seconds = _best_of(as_min_dfa, pattern, rounds=1)

    result, _ = run_timed(benchmark, as_min_dfa, pattern, rounds=ROUNDS)
    warm_seconds = float(benchmark.stats.stats.min)
    stats = cache_stats()["min_dfa"]
    assert stats["hits"] >= 1
    assert result is as_min_dfa(pattern)
    record_bench(
        "min_dfa_cache_amortization",
        seconds=warm_seconds,
        cache_hits=stats["hits"],
        cold_seconds=cold_seconds,
        misses=stats["misses"],
    )
    record(
        EXPERIMENT,
        {
            "op": "as_min_dfa (warm cache)",
            "n": "",
            "dfa_states": len(result.states),
            "new_s": f"{warm_seconds:.6f}",
            "old_s": f"{cold_seconds:.6f}",
            "speedup": f"{cold_seconds / max(warm_seconds, 1e-9):.0f}x",
        },
        note=NOTE,
    )
