"""EXP-3.2a — minimal upper approximation of arbitrary EDTDs.

Paper claim (Theorem 3.2): the minimal upper XSD-approximation of any EDTD
is unique and computable (in exponential time in the worst case; typically
far cheaper).

Reproduction: sweep random EDTDs of growing type count, run Construction
3.1, verify the result is an upper approximation (Lemma 3.3 check) and
record input/output sizes and times.  Average-case behaviour is near-linear
because random type automata rarely determinize badly.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import run_timed
from repro.core.decision import is_upper_approximation
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import example_2_6
from repro.families.random_schemas import random_edtd

EXPERIMENT = "EXP-3.2a  minimal upper approximation of arbitrary EDTDs"
NOTE = "unique minimal upper approximation; random EDTDs stay near-linear"


@pytest.mark.parametrize("num_types", [4, 6, 8, 12, 16])
def test_random_edtd_sweep(num_types, record, benchmark):
    edtd = random_edtd(random.Random(num_types), num_labels=4, num_types=num_types)
    upper, seconds = run_timed(benchmark, minimal_upper_approximation, edtd)
    assert is_upper_approximation(upper, edtd)
    record(
        EXPERIMENT,
        {
            "input_types": edtd.type_size(),
            "input_size": edtd.size(),
            "upper_types": upper.type_size(),
            "upper_size": upper.size(),
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_example_2_6(record, benchmark):
    edtd = example_2_6()
    upper, seconds = run_timed(benchmark, minimal_upper_approximation, edtd)
    assert is_upper_approximation(upper, edtd)
    record(
        EXPERIMENT,
        {
            "input_types": edtd.type_size(),
            "input_size": edtd.size(),
            "upper_types": upper.type_size(),
            "upper_size": upper.size(),
            "construct_s": f"{seconds:.4f}",
        },
    )
