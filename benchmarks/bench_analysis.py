"""EXP-A — analyzer self-benchmark: the whole-program lint pass over ``src/``.

The lint CI job runs ``python -m repro.analysis src`` on every push, so
the analyzer's own cost is part of the development loop.  This benchmark
pins it: one full lint pass (R001–R011, which internally builds the call
graph and runs the effect fixpoint) plus a standalone effect-report
build, each under a loose wall-clock bound.  The bound is deliberately
generous — machine-noise-proof, catching only order-of-magnitude
regressions (an accidentally quadratic fixpoint, a call-resolution
blow-up), not percent-level drift.

The CI lint job has no pytest installed, so this file runs standalone:

    PYTHONPATH=src python benchmarks/bench_analysis.py

It is also collected by the pytest benchmark sweep.  Override the bound
with ``REPRO_BENCH_ANALYSIS_BUDGET`` (seconds; ``0`` or ``none``
disables the assertion).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"

#: Loose default wall bound per pass, in seconds.  The full pass takes
#: ~2 s on a warm developer machine; 60 s only trips on a complexity
#: regression, never on a slow CI runner.
DEFAULT_BUDGET_SECONDS = 60.0


def _budget_seconds() -> float | None:
    raw = os.environ.get("REPRO_BENCH_ANALYSIS_BUDGET", "").strip().lower()
    if not raw:
        return DEFAULT_BUDGET_SECONDS
    if raw in ("0", "none", "off"):
        return None
    return float(raw)


def run_analysis_benchmark() -> dict:
    """Time one lint pass and one effect-report build over ``src/``."""
    from repro.analysis import (
        Program,
        analyze_paths,
        effect_report,
        load_contexts,
    )

    t0 = time.perf_counter()
    findings = analyze_paths([SRC], root=REPO_ROOT)
    lint_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    ctxs, parse_errors = load_contexts([SRC], root=REPO_ROOT)
    report = effect_report(Program.from_contexts(ctxs), root="src")
    effects_seconds = time.perf_counter() - t1

    summary = report["summary"]
    return {
        "modules": len(ctxs),
        "functions": summary["functions"],
        "pure": summary["pure"],
        "certified_shardable": len(summary["certified_shardable"]),
        "findings": len(findings),
        "parse_errors": len(parse_errors),
        "lint_seconds": lint_seconds,
        "effects_seconds": effects_seconds,
    }


def _check(metrics: dict) -> list[str]:
    problems = []
    if metrics["parse_errors"]:
        problems.append(f"{metrics['parse_errors']} files failed to parse")
    budget = _budget_seconds()
    if budget is not None:
        for phase in ("lint_seconds", "effects_seconds"):
            if metrics[phase] > budget:
                problems.append(
                    f"{phase.removesuffix('_seconds')} pass took "
                    f"{metrics[phase]:.1f}s > {budget:.0f}s budget "
                    "(REPRO_BENCH_ANALYSIS_BUDGET overrides)"
                )
    return problems


def test_analyzer_within_wall_budget():
    """Pytest entry point: the same standalone measurement, asserted."""
    metrics = run_analysis_benchmark()
    problems = _check(metrics)
    assert not problems, "; ".join(problems)


def main() -> int:
    metrics = run_analysis_benchmark()
    print("EXP-A  analyzer self-benchmark (whole-program pass over src/)")
    print(
        f"  {metrics['modules']} modules, {metrics['functions']} functions "
        f"({metrics['pure']} inferred pure, "
        f"{metrics['certified_shardable']} certified shardable)"
    )
    print(
        f"  lint pass (R001-R011):  {metrics['lint_seconds']:6.2f}s  "
        f"[{metrics['findings']} findings]"
    )
    print(f"  effect report build:    {metrics['effects_seconds']:6.2f}s")
    problems = _check(metrics)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
