"""EXP-5 — content-model representations (Section 5).

Paper claims: with NFA or RE content models the constructions still work,
but (a) inclusion testing degrades from PTIME to PSPACE-complete, and
(b) complementation of content models blows up exponentially (NFAs) —
which is where the complement approximation's polynomial bound relies on
DFA representations.

Reproduction: (a) measure the NFA -> DFA conversion cost of content models
along the classic blow-up family (the price the DFA convention pays once,
up front); (b) check deterministic-RE detection (the UPA-constrained class
XML Schema actually allows) over a regex sample.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import determinize
from repro.strings.glushkov import is_deterministic_expression
from repro.strings.minimize import minimize_dfa
from repro.strings.regex import parse

EXPERIMENT = "EXP-5  content-model representations (NFA/RE vs DFA)"
NOTE = "NFA content models hide an exponential determinization cost"


@pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
def test_nfa_content_blowup(n, record, benchmark):
    nfa = nth_from_end_is("a", "b", n)

    def to_min_dfa():
        return minimize_dfa(determinize(nfa))

    dfa, seconds = run_timed(benchmark, to_min_dfa)
    assert len(dfa.states) == 2 ** (n + 1)
    record(
        EXPERIMENT,
        {
            "n": n,
            "nfa_states": len(nfa.states),
            "min_dfa_states": len(dfa.states),
            "predicted": 2 ** (n + 1),
            "determinize_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_deterministic_expression_detection(record, benchmark):
    samples = {
        "a, (b | c)*": True,
        "(a, b)* , c": True,
        "a, b | a, c": False,
        "(a | b)*, a": False,
        "a?, a": False,
        "a+, b": True,
    }

    def classify():
        return {src: is_deterministic_expression(parse(src)) for src in samples}

    results, seconds = run_timed(benchmark, classify)
    assert results == samples
    record(
        EXPERIMENT,
        {
            "n": "DRE check",
            "nfa_states": "-",
            "min_dfa_states": "-",
            "predicted": f"{sum(samples.values())}/{len(samples)} deterministic",
            "determinize_s": f"{seconds:.4f}",
        },
    )


def test_representation_sizes(record, benchmark):
    """The same schema measured under DFA / NFA / RE content models."""
    from repro.families.real_world import rss_feed
    from repro.schemas.measures import representation_sizes

    schema = rss_feed()
    sizes, seconds = run_timed(benchmark, representation_sizes, schema)
    record(
        EXPERIMENT,
        {
            "n": "rss sizes",
            "nfa_states": sizes.nfa,
            "min_dfa_states": sizes.dfa,
            "predicted": f"regex rpn {sizes.regex}",
            "determinize_s": f"{seconds:.4f}",
        },
    )
