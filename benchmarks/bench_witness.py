"""EXP-WITNESS — constructive Lemma 3.3: counterexample generation cost.

When an inclusion into a single-type schema fails, the library produces a
concrete counterexample document.  This bench measures the end-to-end cost
(decision + witness assembly) against the plain boolean decision, and
records witness sizes — they stay small because every search in the
assembly is shortest-first.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import run_timed
from repro.core.witness import inclusion_counterexample
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type

EXPERIMENT = "EXP-WITNESS  counterexample generation (constructive Lemma 3.3)"
NOTE = "witnesses verified as members of sub minus sup; sizes stay small"


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_witness_generation(seed, record, benchmark):
    rng = random.Random(6200 + seed)
    sub = random_edtd(rng, num_labels=3, num_types=5)
    sup = random_single_type_edtd(rng, num_labels=3, num_types=5)

    witness, seconds = run_timed(benchmark, inclusion_counterexample, sub, sup)
    start = time.perf_counter()
    included = included_in_single_type(sub, sup)
    decision_seconds = time.perf_counter() - start

    if included:
        assert witness is None
        size = "-"
    else:
        assert witness is not None
        assert sub.accepts(witness)
        assert not sup.accepts(witness)
        size = witness.size()
    record(
        EXPERIMENT,
        {
            "seed": seed,
            "included": included,
            "witness_nodes": size,
            "decision_s": f"{decision_seconds:.4f}",
            "witness_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )
