"""EXP-REAL — the constructions on realistic schema shapes.

The paper's families are worst cases; this bench runs the full pipeline on
document shapes from practice (RSS/Atom skeletons, recursive XHTML,
order-feed versions) and records output sizes, exactness, and slack —
the numbers a schema engineer would actually see.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.lower import maximal_lower_union
from repro.core.quality import upper_quality
from repro.core.upper import upper_difference, upper_union
from repro.families.real_world import (
    atom_feed,
    purchase_orders_v1,
    purchase_orders_v2,
    rss_feed,
    xhtml_fragment,
)
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import difference_edtd, edtd_union
from repro.tree_automata.inclusion import edtd_includes

EXPERIMENT = "EXP-REAL  the pipeline on realistic schema shapes"
NOTE = "merge/diff/roll-out on RSS|Atom and order-feed evolution"


def test_rss_atom_merge(record, benchmark):
    rss, atom = rss_feed(), atom_feed()

    def build():
        return minimize_single_type(upper_union(rss, atom))

    merged, seconds = run_timed(benchmark, build)
    union = edtd_union(rss, atom)
    exact = edtd_includes(union, merged)
    quality = upper_quality(union, merged, max_size=9)
    record(
        EXPERIMENT,
        {
            "operation": "rss | atom",
            "in_types": f"{len(rss.types)}+{len(atom.types)}",
            "out_types": len(merged.types),
            "exact": exact,
            "slack<=9": quality.total_slack(),
            "time_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )


def test_order_evolution_difference(record, benchmark):
    v1, v2 = purchase_orders_v1(), purchase_orders_v2()

    def build():
        return minimize_single_type(upper_difference(v2, v1))

    router, seconds = run_timed(benchmark, build)
    exact_language = difference_edtd(v2, v1)
    exact = edtd_includes(exact_language, router)
    quality = upper_quality(exact_language, router, max_size=9)
    record(
        EXPERIMENT,
        {
            "operation": "orders v2 - v1",
            "in_types": f"{len(v2.types)}+{len(v1.types)}",
            "out_types": len(router.types),
            "exact": exact,
            "slack<=9": quality.total_slack(),
            "time_s": f"{seconds:.3f}",
        },
    )


def test_order_rollout_lower(record, benchmark):
    v1, v2 = purchase_orders_v1(), purchase_orders_v2()

    def build():
        return minimize_single_type(maximal_lower_union(v1, v2))

    rollout, seconds = run_timed(benchmark, build)
    record(
        EXPERIMENT,
        {
            "operation": "rollout v1|nv(v2,v1)",
            "in_types": f"{len(v1.types)}+{len(v2.types)}",
            "out_types": len(rollout.types),
            "exact": "(lower)",
            "slack<=9": "-",
            "time_s": f"{seconds:.3f}",
        },
    )


def test_xhtml_self_merge_exact(record, benchmark):
    xhtml = xhtml_fragment()

    def build():
        return minimize_single_type(upper_union(xhtml, xhtml))

    merged, seconds = run_timed(benchmark, build)
    from repro.schemas.inclusion import single_type_equivalent

    assert single_type_equivalent(merged, xhtml)
    record(
        EXPERIMENT,
        {
            "operation": "xhtml | xhtml",
            "in_types": f"{len(xhtml.types)}+{len(xhtml.types)}",
            "out_types": len(merged.types),
            "exact": True,
            "slack<=9": 0,
            "time_s": f"{seconds:.3f}",
        },
    )
