"""FIG-1 — ancestor-guarded subtree exchange and closure growth.

Operationalizes Figure 1 / Theorem 2.11: the closure of the Theorem 4.3
union's bounded fragment under subtree exchange equals the bounded fragment
of the minimal upper approximation — i.e. the approximation *is* the
closure.  Records how many trees each size bound adds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.closure.closure import bounded_closure
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.ops import edtd_union
from repro.trees.generate import enumerate_trees

EXPERIMENT = "FIG-1  closure under subtree exchange = minimal upper approximation"
NOTE = "bounded closure of L(D1|D2) vs bounded fragment of upper(D1|D2)"


@pytest.mark.parametrize("bound", [3, 4, 5, 6])
def test_closure_equals_upper(bound, record, benchmark):
    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    upper = minimal_upper_approximation(union)
    members = enumerate_trees(union, bound + 1)

    def close():
        return bounded_closure(members, max_size=bound + 1)

    closure, seconds = run_timed(benchmark, close)
    upper_members = set(enumerate_trees(upper, bound))
    closure_bounded = {t for t in closure if t.size() <= bound}
    assert closure_bounded == upper_members
    record(
        EXPERIMENT,
        {
            "size_bound": bound,
            "union_members": sum(1 for t in members if t.size() <= bound),
            "closure_members": len(closure_bounded),
            "upper_members": len(upper_members),
            "closure_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )
