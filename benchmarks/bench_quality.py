"""EXP-QUALITY — how tight are the optimal approximations?

The paper motivates minimal upper approximations by error minimization
(Section 1).  This bench quantifies the slack of the union approximation
on the Theorem 4.3 instance and on the quickstart-style merge: extra
documents admitted per document size — zero exactly when the operation
result is single-type definable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.quality import upper_quality
from repro.core.upper import upper_union
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD

EXPERIMENT = "EXP-QUALITY  slack of minimal upper approximations"
NOTE = "documents admitted beyond the exact result, per size (0..8)"


def _orders_and_returns():
    orders = SingleTypeEDTD(
        alphabet={"order", "item", "price", "reason"},
        types={"o", "i", "p"},
        rules={"o": "i+", "i": "p", "p": "~"},
        starts={"o"},
        mu={"o": "order", "i": "item", "p": "price"},
    )
    returns = SingleTypeEDTD(
        alphabet={"order", "item", "price", "reason"},
        types={"o", "i", "r"},
        rules={"o": "i*", "i": "r", "r": "~"},
        starts={"o"},
        mu={"o": "order", "i": "item", "r": "reason"},
    )
    return orders, returns


@pytest.mark.parametrize(
    "name",
    ["theorem-4.3", "orders|returns"],
)
def test_union_slack(name, record, benchmark):
    if name == "theorem-4.3":
        d1, d2 = theorem_4_3_d1_d2()
    else:
        d1, d2 = _orders_and_returns()
    union = edtd_union(d1, d2)
    upper = upper_union(d1, d2)

    def measure():
        return upper_quality(union, upper, max_size=8)

    quality, seconds = run_timed(benchmark, measure)
    assert all(s >= 0 for s in quality.slack)
    record(
        EXPERIMENT,
        {
            "instance": name,
            "union_members<=8": sum(quality.original_counts),
            "upper_members<=8": sum(quality.approx_counts),
            "slack_by_size": str(list(quality.slack)),
            "measure_s": f"{seconds:.3f}",
        },
        note=NOTE,
    )


def test_sampling_estimate(record, benchmark):
    """Monte Carlo slack estimation at sizes where exact counting is
    impractical for ambiguous exact languages."""
    import random

    from repro.core.sampling_eval import estimate_slack_ratio

    d1, d2 = theorem_4_3_d1_d2()
    union = edtd_union(d1, d2)
    upper = upper_union(d1, d2)

    def estimate():
        return estimate_slack_ratio(
            union, upper, random.Random(77), target_size=14, samples=200
        )

    result, seconds = run_timed(benchmark, estimate)
    assert result.outside > 0
    record(
        EXPERIMENT,
        {
            "instance": "theorem-4.3 @ size~14 (sampled)",
            "union_members<=8": "-",
            "upper_members<=8": "-",
            "slack_by_size": f"ratio {result.ratio:.2f} +/- {result.stderr:.2f}",
            "measure_s": f"{seconds:.3f}",
        },
    )
