"""EXP-3.6b — Theorem 3.6's quadratic lower-bound family.

Paper claim: there are stEDTD pairs of size O(n) whose union's minimal
upper XSD-approximation needs Omega(n^2) types (the "at most n a's" /
"at most n b's" counting pair).

Reproduction: sweep n, minimize the approximation, record type counts;
the shape must grow quadratically (second difference constant) and stay
above n^2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_timed
from repro.core.upper import upper_union
from repro.families.hard import theorem_3_6_family
from repro.schemas.minimize import minimize_single_type

EXPERIMENT = "EXP-3.6b  quadratic blow-up of union approximations"
NOTE = "paper: inputs O(n) types, output Omega(n^2) minimal types"

_RESULTS: dict[int, int] = {}


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
def test_quadratic_shape(n, record, benchmark):
    d1, d2 = theorem_3_6_family(n)

    def build():
        return minimize_single_type(upper_union(d1, d2))

    minimal, seconds = run_timed(benchmark, build)
    assert len(minimal.types) >= n * n
    _RESULTS[n] = len(minimal.types)
    record(
        EXPERIMENT,
        {
            "n": n,
            "types_d1": len(d1.types),
            "types_d2": len(d2.types),
            "minimal_union_types": len(minimal.types),
            "n^2": n * n,
            "construct_s": f"{seconds:.4f}",
        },
        note=NOTE,
    )


def test_second_difference_is_constant(benchmark):
    """Quadratic growth <=> constant second difference of the series."""

    def check():
        points = [n for n in sorted(_RESULTS) if n >= 2]
        if len(points) < 3:
            return True
        values = [_RESULTS[n] for n in points]
        second = [
            values[i + 2] - 2 * values[i + 1] + values[i]
            for i in range(len(values) - 2)
        ]
        return len(set(second)) == 1

    assert benchmark.pedantic(check, rounds=1, iterations=1)
