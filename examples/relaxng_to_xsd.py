#!/usr/bin/env python3
"""Relax NG to XSD: approximating an arbitrary regular tree language.

Relax NG schemas define arbitrary unranked regular tree languages (EDTDs);
XML Schema only the single-type ones.  A Web service describing its
interface in Relax NG must publish an XSD companion (the paper's data-
exchange motivation):

* for a *validator* at the service boundary one wants the **maximal lower
  approximation** — accept only documents the service truly understands;
* for a *producer-facing* schema one wants the **minimal upper
  approximation** — describe everything the service may emit.

This example uses a Relax NG-style schema in which the content model of a
`section` depends on a *sibling-installed* type: report sections contain
figures, appendix sections contain tables — a non-single-type pattern.

Run:  python examples/relaxng_to_xsd.py
"""

from repro import EDTD, is_single_type, is_single_type_definable, minimize_single_type
from repro.core import (
    is_minimal_upper_approximation,
    minimal_upper_approximation,
    upper_quality,
)
from repro.schemas.pretty import format_edtd
from repro.trees.xml_io import from_xml


def relaxng_schema() -> EDTD:
    """A document is a report (sections hold figures) or an appendix
    bundle (sections hold tables).  Two `section` types with one label —
    fine for Relax NG, illegal for XML Schema (EDC)."""
    return EDTD(
        alphabet={"doc", "section", "figure", "table", "para"},
        types={"rep", "app", "rsec", "asec", "fig", "tab", "par"},
        rules={
            "rep": "rsec+",
            "app": "asec+",
            "rsec": "par*, fig*",
            "asec": "par*, tab*",
            "fig": "~",
            "tab": "~",
            "par": "~",
        },
        starts={"rep", "app"},
        mu={
            "rep": "doc",
            "app": "doc",
            "rsec": "section",
            "asec": "section",
            "fig": "figure",
            "tab": "table",
            "par": "para",
        },
    )


def main() -> None:
    relaxng = relaxng_schema()
    print(format_edtd(relaxng, title="Relax NG schema (an arbitrary EDTD)"))
    print()
    print("is it already an XSD (single-type)?", is_single_type(relaxng))
    print("is its *language* single-type definable?", is_single_type_definable(relaxng))
    print()

    xsd = minimize_single_type(minimal_upper_approximation(relaxng))
    print(format_edtd(xsd, title="Published XSD (minimal upper approximation)"))
    print()
    assert is_minimal_upper_approximation(xsd, relaxng)
    print("verified: no XSD between the Relax NG language and this one exists")
    print()

    documents = {
        "pure report": "<doc><section><para/><figure/></section></doc>",
        "pure appendix": "<doc><section><para/><table/></section></doc>",
        "mixed sections (outside Relax NG)": (
            "<doc><section><figure/></section><section><table/></section></doc>"
        ),
        "figure and table in one section": (
            "<doc><section><figure/><table/></section></doc>"
        ),
    }
    print(f"{'document':45} RelaxNG  XSD")
    for name, source in documents.items():
        tree = from_xml(source)
        print(f"{name:45} {str(relaxng.accepts(tree)):7}  {xsd.accepts(tree)}")
    print()

    quality = upper_quality(relaxng, xsd, max_size=8)
    print("slack per document size 0..8:", list(quality.slack))
    print()
    print(
        "The slack is exactly cross-section mixing: report sections and\n"
        "appendix sections under one doc.  Mixing *within* a section stays\n"
        "rejected — the merged section type takes the union of the two\n"
        "content models (para* fig* | para* tab*), not their shuffle,\n"
        "because subtree exchange never splices child strings."
    )


if __name__ == "__main__":
    main()
