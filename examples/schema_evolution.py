#!/usr/bin/env python3
"""Schema evolution: difference and guarded roll-out of a schema change.

Version 2 of a feed schema makes the `currency` element mandatory and adds
an optional `discount`.  Operations wants:

1. an XSD for "documents valid under v2 but NOT under v1" (to route
   new-format documents) — the *difference*, approximated minimally from
   above (Theorem 3.10, polynomial time);
2. the maximal safe subset of v2 that old consumers already accept — the
   *maximal lower approximation of the union fixing v1* (Theorem 4.8),
   i.e. v1 plus the non-violating part of v2.

Run:  python examples/schema_evolution.py
"""

from repro import (
    SingleTypeEDTD,
    difference_edtd,
    edtd_union,
    maximal_lower_union,
    minimize_single_type,
    non_violating,
)
from repro.core import is_minimal_upper_approximation, upper_difference
from repro.schemas.pretty import format_edtd
from repro.trees.xml_io import from_xml


def schema_v1() -> SingleTypeEDTD:
    return SingleTypeEDTD(
        alphabet={"feed", "entry", "amount", "currency"},
        types={"f", "e", "a", "c"},
        rules={"f": "e*", "e": "a, c?", "a": "~", "c": "~"},
        starts={"f"},
        mu={"f": "feed", "e": "entry", "a": "amount", "c": "currency"},
    )


def schema_v2() -> SingleTypeEDTD:
    return SingleTypeEDTD(
        alphabet={"feed", "entry", "amount", "currency", "discount"},
        types={"f", "e", "a", "c", "d"},
        rules={"f": "e*", "e": "a, c, d?", "a": "~", "c": "~", "d": "~"},
        starts={"f"},
        mu={
            "f": "feed",
            "e": "entry",
            "a": "amount",
            "c": "currency",
            "d": "discount",
        },
    )


def main() -> None:
    v1, v2 = schema_v1(), schema_v2()
    print(format_edtd(v1, title="Schema v1"))
    print()
    print(format_edtd(v2, title="Schema v2"))
    print()

    # --- 1. What is new in v2? ------------------------------------------
    new_only = difference_edtd(v2, v1)
    router = minimize_single_type(upper_difference(v2, v1))
    assert is_minimal_upper_approximation(router, new_only)
    print(format_edtd(router, title="Router XSD ~ (v2 minus v1), minimal upper approx"))
    print()

    documents = {
        "v1-style entry": "<feed><entry><amount/></entry></feed>",
        "v2 entry with discount": (
            "<feed><entry><amount/><currency/><discount/></entry></feed>"
        ),
        "v2 entry, no discount (also v1)": (
            "<feed><entry><amount/><currency/></entry></feed>"
        ),
        "empty feed (both)": "<feed/>",
    }
    print(f"{'document':40} v1      v2      v2-only router")
    for name, source in documents.items():
        tree = from_xml(source)
        print(
            f"{name:40} {str(v1.accepts(tree)):7} {str(v2.accepts(tree)):7} "
            f"{router.accepts(tree)}"
        )
    print()

    # --- 2. Guarded roll-out: grow v1 by the safe part of v2 ------------
    safe_part = non_violating(v2, v1)
    rollout = minimize_single_type(maximal_lower_union(v1, v2))
    print(format_edtd(rollout, title="Roll-out XSD = v1 | nv(v2, v1), maximal lower"))
    print()
    union = edtd_union(v1, v2)
    print("roll-out is a subset of v1|v2 and contains all of v1:")
    mixed = from_xml(
        "<feed><entry><amount/></entry>"
        "<entry><amount/><currency/><discount/></entry></feed>"
    )
    print("  mixed v1+v2 feed in union?      ", union.accepts(mixed))
    print("  mixed v1+v2 feed in roll-out?   ", rollout.accepts(mixed))
    print(
        "  discount-carrying entry safe?    ",
        safe_part.accepts(
            from_xml("<feed><entry><amount/><currency/><discount/></entry></feed>")
        ),
    )
    print()
    print(
        "Here the non-violating part of v2 collapses to v1's own entries:\n"
        "a discount entry exchanged into a v1 feed yields a mixed feed\n"
        "outside v1|v2, so no discount entry is safe for old consumers —\n"
        "the roll-out schema is exactly v1, proved maximal by Theorem 4.8."
    )


if __name__ == "__main__":
    main()
