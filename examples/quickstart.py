#!/usr/bin/env python3
"""Quickstart: build two XSDs, merge them, validate documents.

The union of two XSDs is generally *not* expressible as an XSD (the EDC
constraint breaks closure under union) — the library computes the unique
minimal upper XSD-approximation instead (Theorem 3.6 of the paper).

Run:  python examples/quickstart.py
"""

from repro import SingleTypeEDTD, edtd_union, minimize_single_type, upper_union
from repro.core import upper_quality
from repro.schemas.pretty import format_edtd
from repro.trees.xml_io import from_xml


def main() -> None:
    # An order feed: orders hold items, each item has a price.
    orders = SingleTypeEDTD(
        alphabet={"order", "item", "price"},
        types={"o", "i", "p"},
        rules={"o": "i+", "i": "p", "p": "~"},
        starts={"o"},
        mu={"o": "order", "i": "item", "p": "price"},
    )

    # A returns feed: orders hold items too, but items carry a reason
    # instead of a price and an order may be empty.
    returns = SingleTypeEDTD(
        alphabet={"order", "item", "reason"},
        types={"o", "i", "r"},
        rules={"o": "i*", "i": "r", "r": "~"},
        starts={"o"},
        mu={"o": "order", "i": "item", "r": "reason"},
    )

    print(format_edtd(orders, title="Schema A: orders"))
    print()
    print(format_edtd(returns, title="Schema B: returns"))
    print()

    # The exact union is not an XSD; approximate it minimally from above.
    merged = upper_union(orders, returns)
    merged = minimize_single_type(merged)
    print(format_edtd(merged, title="Minimal upper XSD-approximation of A | B"))
    print()

    documents = [
        "<order><item><price/></item></order>",
        "<order><item><reason/></item></order>",
        "<order/>",
        # Mixed document: not in A | B, but unavoidable in any XSD that
        # contains both (this is exactly the approximation slack):
        "<order><item><price/></item><item><reason/></item></order>",
        # Garbage stays rejected:
        "<order><price/></order>",
    ]
    union = edtd_union(orders, returns)
    print(f"{'document':60}  in A|B   in merged XSD")
    for source in documents:
        tree = from_xml(source)
        print(f"{source:60}  {str(union.accepts(tree)):7}  {merged.accepts(tree)}")

    quality = upper_quality(union, merged, max_size=8)
    print()
    print(
        "extra documents admitted by the approximation, by size 0..8:",
        list(quality.slack),
    )


if __name__ == "__main__":
    main()
