#!/usr/bin/env python3
"""Schema integration: merge the catalogs of two book sellers.

The data-integration scenario of the paper's introduction: a portal wants a
single XSD covering documents from both partners.  Since XSDs are not
closed under union, the portal ships the *minimal upper
XSD-approximation* — it accepts everything both partners produce and admits
as few extra documents as possible (Theorem 3.6: unique, computable in
O(|X| |Y|)).

The example quantifies the approximation slack exactly (documents per size
admitted beyond the true union) and shows the witness documents.

Run:  python examples/schema_integration.py
"""

from repro import SingleTypeEDTD, edtd_union, minimize_single_type, upper_union
from repro.core import extra_documents, is_minimal_upper_approximation, upper_quality
from repro.schemas.pretty import format_edtd
from repro.trees.xml_io import to_xml


def seller_a() -> SingleTypeEDTD:
    """Seller A: books with authors; used books carry a condition note."""
    return SingleTypeEDTD(
        alphabet={"catalog", "book", "author", "condition"},
        types={"cat", "bk", "au", "cond"},
        rules={
            "cat": "bk*",
            "bk": "au+, cond?",
            "au": "~",
            "cond": "~",
        },
        starts={"cat"},
        mu={"cat": "catalog", "bk": "book", "au": "author", "cond": "condition"},
    )


def seller_b() -> SingleTypeEDTD:
    """Seller B: books with optional author but a mandatory publisher."""
    return SingleTypeEDTD(
        alphabet={"catalog", "book", "author", "publisher"},
        types={"cat", "bk", "au", "pub"},
        rules={
            "cat": "bk+",
            "bk": "au?, pub",
            "au": "~",
            "pub": "~",
        },
        starts={"cat"},
        mu={"cat": "catalog", "bk": "book", "au": "author", "pub": "publisher"},
    )


def main() -> None:
    a, b = seller_a(), seller_b()
    print(format_edtd(a, title="Seller A"))
    print()
    print(format_edtd(b, title="Seller B"))
    print()

    union = edtd_union(a, b)
    merged = minimize_single_type(upper_union(a, b))
    print(format_edtd(merged, title="Portal schema (minimal upper approximation)"))
    print()

    assert is_minimal_upper_approximation(merged, union)
    print("verified: the portal schema is THE minimal upper XSD-approximation")
    print()

    quality = upper_quality(union, merged, max_size=9)
    print("approximation slack (extra documents per node count 0..9):")
    print(" ", list(quality.slack))
    print()

    extras = extra_documents(union, merged, max_size=7)
    print(f"the {len(extras)} smallest extra documents the portal accepts:")
    for tree in extras[:4]:
        print(to_xml(tree))
        print()
    if extras:
        print(
            "These mix per-seller conventions inside one catalog — the price\n"
            "of EDC-compliance, minimized by construction."
        )


if __name__ == "__main__":
    main()
