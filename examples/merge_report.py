#!/usr/bin/env python3
"""End-to-end product pipeline: merge two real feed schemas, emit a
markdown merge report and a W3C XSD.

Combines the library's extension features on the realistic fixtures:
`merge_report` (approximation + slack + example documents) and
`export_xsd` (the deployable artifact).

Run:  python examples/merge_report.py
"""

from repro.core.report import difference_report, merge_report
from repro.core.upper import upper_union
from repro.families.real_world import (
    atom_feed,
    purchase_orders_v1,
    purchase_orders_v2,
    rss_feed,
)
from repro.schemas.minimize import minimize_single_type
from repro.schemas.xsd_export import export_xsd


def main() -> None:
    print(merge_report(rss_feed(), atom_feed(), left_name="rss", right_name="atom"))
    print()
    print(
        difference_report(
            purchase_orders_v2(),
            purchase_orders_v1(),
            left_name="orders-v2",
            right_name="orders-v1",
        )
    )
    print()
    print("Deployable XSD for the merged feed schema:")
    print()
    merged = minimize_single_type(upper_union(rss_feed(), atom_feed()))
    print(export_xsd(merged))


if __name__ == "__main__":
    main()
