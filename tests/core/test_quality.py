"""Tests for the approximation-quality metrics."""

from __future__ import annotations

from repro.core.quality import extra_documents, lower_quality, upper_quality
from repro.core.upper import upper_union
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.ops import edtd_union


class TestUpperQuality:
    def test_exact_approximation_has_zero_slack(self, store_schema):
        quality = upper_quality(store_schema, store_schema, max_size=8)
        assert quality.is_exact_within_bound()
        assert quality.total_slack() == 0

    def test_union_overshoot_measured(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        quality = upper_quality(union, upper, max_size=6)
        assert all(s >= 0 for s in quality.slack)
        assert quality.total_slack() > 0
        assert not quality.is_exact_within_bound()

    def test_extra_documents_are_genuinely_extra(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        extras = extra_documents(union, upper, max_size=5)
        assert extras
        for tree in extras:
            assert upper.accepts(tree)
            assert not union.accepts(tree)

    def test_slack_counts_match_extra_documents(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        quality = upper_quality(union, upper, max_size=5)
        extras = extra_documents(union, upper, max_size=5)
        assert quality.total_slack() == len(extras)


class TestLowerQuality:
    def test_lower_loss_measured(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        quality = lower_quality(union, d1, max_size=6)
        assert all(s >= 0 for s in quality.slack)
        assert quality.total_slack() > 0  # d1 alone loses all branching trees
