"""Tests for the decision procedures (Theorem 3.5, definability, Section
4.4.2 maximality)."""

from __future__ import annotations

import random

import pytest

from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
    is_minimal_upper_approximation,
    is_single_type_definable,
    is_upper_approximation,
    singleton_edtd,
)
from repro.core.upper import minimal_upper_approximation, upper_union
from repro.families.hard import (
    example_2_6,
    theorem_3_2_family,
    theorem_4_3_d1_d2,
    theorem_4_3_xn,
    theorem_4_11_dtd,
    theorem_4_11_xn,
)
from repro.families.random_schemas import random_edtd
from repro.schemas.ops import complement_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import enumerate_all_trees
from repro.trees.tree import parse_tree


class TestUpperApproximationChecks:
    def test_upper_check_positive(self):
        edtd = example_2_6()
        assert is_upper_approximation(minimal_upper_approximation(edtd), edtd)

    def test_upper_check_negative(self, ab_pair_schema):
        edtd = example_2_6()
        assert not is_upper_approximation(ab_pair_schema, edtd)

    def test_minimal_upper_positive(self):
        edtd = example_2_6()
        upper = minimal_upper_approximation(edtd)
        assert is_minimal_upper_approximation(upper, edtd)

    def test_minimal_upper_negative_too_large(self):
        # The universal schema contains L(D) but is not minimal.
        edtd = example_2_6()
        universal = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ua", "ub"},
            rules={"ua": "(ua | ub)*", "ub": "(ua | ub)*"},
            starts={"ua", "ub"},
            mu={"ua": "a", "ub": "b"},
        )
        assert is_upper_approximation(universal, edtd)
        assert not is_minimal_upper_approximation(universal, edtd)

    def test_minimal_upper_negative_not_containing(self, ab_pair_schema):
        assert not is_minimal_upper_approximation(ab_pair_schema, example_2_6())

    def test_minimal_upper_union_candidates(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        assert is_minimal_upper_approximation(upper_union(d1, d2), union)
        assert not is_minimal_upper_approximation(d1, union)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_positive_cases(self, seed):
        edtd = random_edtd(random.Random(600 + seed), num_labels=2, num_types=4)
        upper = minimal_upper_approximation(edtd)
        assert is_minimal_upper_approximation(upper, edtd), seed


class TestDefinability:
    """The EXPTIME-complete ST-REG membership test."""

    def test_single_type_schema_definable(self, store_schema):
        assert is_single_type_definable(store_schema)

    def test_unary_languages_always_definable(self):
        # On unary trees EDTD=NFA and stEDTD=DFA: every regular unary tree
        # language is ST-definable (Theorem 3.2's discussion).
        assert is_single_type_definable(theorem_3_2_family(3))

    def test_theorem_4_3_union_not_definable(self):
        d1, d2 = theorem_4_3_d1_d2()
        assert not is_single_type_definable(edtd_union(d1, d2))

    def test_complement_of_chains_not_definable(self):
        chains = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t?"},
            starts={"t"},
            mu={"t": "a"},
        )
        assert not is_single_type_definable(complement_edtd(chains))

    def test_example_2_6_definability(self):
        edtd = example_2_6()
        # Whatever the answer, it must agree with comparing against the
        # constructed upper approximation extensionally on a bounded
        # universe when the answer is positive.
        definable = is_single_type_definable(edtd)
        if definable:
            upper = minimal_upper_approximation(edtd)
            for tree in enumerate_all_trees({"a", "b"}, 4):
                assert upper.accepts(tree) == edtd.accepts(tree), tree


class TestSingletonEdtd:
    def test_accepts_exactly_the_tree(self, ab_universe_4):
        tree = parse_tree("a(b, a(b))")
        schema = singleton_edtd(tree, frozenset({"a", "b"}))
        for candidate in ab_universe_4:
            assert schema.accepts(candidate) == (candidate == tree), candidate

    def test_leaf_singleton(self):
        schema = singleton_edtd(parse_tree("a"))
        assert schema.accepts(parse_tree("a"))
        assert not schema.accepts(parse_tree("a(a)"))


class TestMaximalLower:
    def test_xn_family_maximal(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        for n in (1, 2):
            xn = theorem_4_3_xn(n)
            verdict = is_maximal_lower_approximation(xn, union, max_size=5)
            assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND, n

    def test_xn_complement_family_maximal(self):
        dtd = theorem_4_11_dtd()
        complement = complement_edtd(SingleTypeEDTD.from_edtd(dtd.to_edtd()))
        for n in (1, 2):
            xn = theorem_4_11_xn(n)
            assert is_lower_approximation(xn, complement), n
            verdict = is_maximal_lower_approximation(xn, complement, max_size=5)
            assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND, n

    def test_non_maximal_refuted_with_witness(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        verdict = is_maximal_lower_approximation(d2, union, max_size=4)
        assert verdict.outcome is Maximality.NOT_MAXIMAL
        assert verdict.witness is not None
        assert union.accepts(verdict.witness)
        assert not d2.accepts(verdict.witness)
