"""Tests for the schema-merge/difference reports."""

from __future__ import annotations

from repro.core.report import difference_report, merge_report
from repro.families.hard import theorem_4_3_d1_d2
from repro.families.real_world import purchase_orders_v1, purchase_orders_v2


class TestMergeReport:
    def test_inexact_merge(self):
        d1, d2 = theorem_4_3_d1_d2()
        report = merge_report(d1, d2, max_size=6, left_name="chains", right_name="trees")
        assert report.startswith("# Merge report: chains | trees")
        assert "**not** expressible" in report
        assert "## Approximation slack" in report
        assert "```xml" in report

    def test_exact_merge(self, ab_star_schema):
        # Merging a schema with a subset of itself is exact.
        from repro.schemas.st_edtd import SingleTypeEDTD

        sub = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        report = merge_report(ab_star_schema, sub)
        assert "**exact**" in report
        assert "## Approximation slack" not in report

    def test_contains_result_schema_block(self):
        d1, d2 = theorem_4_3_d1_d2()
        report = merge_report(d1, d2, max_size=5)
        assert "## Result schema" in report
        assert "start:" in report


class TestDifferenceReport:
    def test_orders_evolution(self):
        report = difference_report(
            purchase_orders_v2(),
            purchase_orders_v1(),
            max_size=8,
            left_name="v2",
            right_name="v1",
        )
        assert report.startswith("# Difference report: v2 - v1")
        assert "## Result schema" in report

    def test_empty_difference_is_exact(self, store_schema):
        report = difference_report(store_schema, store_schema)
        assert "**exact**" in report
