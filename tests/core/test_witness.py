"""Tests for counterexample/witness generation."""

from __future__ import annotations

import random

import pytest

from repro.core.witness import (
    difference_witness,
    inclusion_counterexample,
    minimal_tree_of_type,
)
from repro.errors import NotSingleTypeError
from repro.families.hard import example_2_6, theorem_4_3_d1_d2
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import parse_tree


class TestMinimalTree:
    def test_minimal_tree_is_member(self, store_schema):
        tree = minimal_tree_of_type(store_schema, "s")
        assert store_schema.accepts(tree)
        assert tree == parse_tree("store")  # i* allows zero items

    def test_minimal_tree_respects_mandatory_children(self, store_schema):
        tree = minimal_tree_of_type(store_schema, "i")
        assert tree == parse_tree("item(price)")

    def test_recursive_type(self):
        d1, _ = theorem_4_3_d1_d2()
        tree = minimal_tree_of_type(d1.reduced(), "ta")
        assert d1.accepts(tree)
        assert tree.size() == 2  # a(b)


class TestInclusionCounterexample:
    def test_none_when_included(self, store_schema):
        smaller = SingleTypeEDTD(
            alphabet=store_schema.alphabet,
            types=store_schema.types,
            rules={"s": "i", "i": "p", "p": "~"},
            starts=store_schema.starts,
            mu=store_schema.mu,
        )
        assert inclusion_counterexample(smaller, store_schema) is None

    def test_witness_for_content_violation(self, store_schema):
        bigger = SingleTypeEDTD(
            alphabet=store_schema.alphabet,
            types=store_schema.types,
            rules={"s": "i* | p", "i": "p", "p": "~"},
            starts=store_schema.starts,
            mu=store_schema.mu,
        )
        witness = inclusion_counterexample(bigger, store_schema)
        assert witness is not None
        assert bigger.accepts(witness)
        assert not store_schema.accepts(witness)

    def test_witness_for_root_violation(self, store_schema):
        other_root = SingleTypeEDTD(
            alphabet=store_schema.alphabet,
            types={"p"},
            rules={"p": "~"},
            starts={"p"},
            mu={"p": "price"},
        )
        witness = inclusion_counterexample(other_root, store_schema)
        assert witness == parse_tree("price")

    def test_witness_deep_violation(self):
        # Violation only visible two levels down.
        deep = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x", "y"},
            rules={"r": "x", "x": "y, y", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b", "y": "c"},
        )
        shallow = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x", "y"},
            rules={"r": "x", "x": "y", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b", "y": "c"},
        )
        witness = inclusion_counterexample(deep, shallow)
        assert witness == parse_tree("a(b(c, c))")

    def test_witness_from_general_edtd(self, store_schema):
        witness = inclusion_counterexample(example_2_6(), _universal_ab())
        assert witness is None  # everything over {a, b} is included
        witness = inclusion_counterexample(example_2_6(), _only_depth_2_ab())
        assert witness is not None
        assert example_2_6().accepts(witness)

    def test_superset_must_be_single_type(self, store_schema):
        with pytest.raises(NotSingleTypeError):
            inclusion_counterexample(store_schema, example_2_6())

    @pytest.mark.parametrize("seed", range(10))
    def test_random_agreement_with_decision(self, seed):
        rng = random.Random(7000 + seed)
        sub = random_edtd(rng, num_labels=3, num_types=4)
        sup = random_single_type_edtd(rng, num_labels=3, num_types=4)
        included = included_in_single_type(sub, sup)
        witness = inclusion_counterexample(sub, sup)
        if included:
            assert witness is None, seed
        else:
            assert witness is not None, seed
            assert sub.accepts(witness), (seed, witness)
            assert not sup.accepts(witness), (seed, witness)


def _universal_ab() -> SingleTypeEDTD:
    from repro.strings.builders import sigma_star

    types = {"ua", "ub"}
    star = sigma_star(types)
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types=types,
        rules={"ua": star, "ub": star},
        starts=types,
        mu={"ua": "a", "ub": "b"},
    )


def _only_depth_2_ab() -> SingleTypeEDTD:
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"ra", "xa", "xb"},
        rules={"ra": "(xa | xb)*", "xa": "~", "xb": "~"},
        starts={"ra"},
        mu={"ra": "a", "xa": "a", "xb": "b"},
    )


class TestDifferenceWitness:
    def test_distinguishing_document(self, ab_star_schema, ab_pair_schema):
        witness = difference_witness(ab_star_schema, ab_pair_schema)
        assert witness is not None
        assert ab_star_schema.accepts(witness) != ab_pair_schema.accepts(witness)

    def test_none_for_equivalent(self, store_schema):
        assert difference_witness(store_schema, store_schema.relabel_types()) is None
