"""Tests for the constructive Theorem 4.12 companion (greedy maximal
lower approximations)."""

from __future__ import annotations

import random

import pytest

from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
)
from repro.core.greedy import empty_schema, greedy_maximal_lower, try_absorb
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import parse_tree


@pytest.fixture
def union_target():
    d1, d2 = theorem_4_3_d1_d2()
    return d1, d2, edtd_union(d1, d2)


class TestTryAbsorb:
    def test_absorbable_tree(self, union_target):
        d1, _, union = union_target
        current = empty_schema(union.alphabet)
        absorbed = try_absorb(current, parse_tree("a(b)"), union)
        assert absorbed is not None
        assert absorbed.accepts(parse_tree("a(b)"))

    def test_unabsorbable_combination(self, union_target):
        d1, d2, union = union_target
        # d1 contains all a^m(b); adding the branching tree escapes.
        absorbed = try_absorb(d1.reduced(), parse_tree("a(a, a)"), union)
        assert absorbed is None

    def test_absorption_is_closure(self, union_target):
        _, _, union = union_target
        current = empty_schema(union.alphabet)
        first = try_absorb(current, parse_tree("a(b)"), union)
        second = try_absorb(first, parse_tree("a(a(b))"), union)
        assert second is not None
        # The closure of {a(b), a(a(b))} adds nothing (different depths).
        assert second.accepts(parse_tree("a(b)"))
        assert second.accepts(parse_tree("a(a(b))"))
        assert not second.accepts(parse_tree("a(a)"))


class TestGreedy:
    def test_result_is_lower_approximation(self, union_target):
        _, _, union = union_target
        result = greedy_maximal_lower(union, max_size=4)
        assert is_lower_approximation(result, union)

    def test_result_is_maximal_within_bound(self, union_target):
        _, _, union = union_target
        result = greedy_maximal_lower(union, max_size=4)
        verdict = is_maximal_lower_approximation(result, union, max_size=4)
        assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND

    def test_different_orders_reach_different_maxima(self, union_target):
        """Executable non-uniqueness (the phenomenon of Theorem 4.3)."""
        _, _, union = union_target
        default = greedy_maximal_lower(union, max_size=4)
        shuffled = greedy_maximal_lower(union, max_size=4, rng=random.Random(5))
        assert not single_type_equivalent(default, shuffled)

    def test_seed_schema_is_preserved(self, union_target):
        d1, _, union = union_target
        result = greedy_maximal_lower(union, max_size=4, seed_schema=d1.reduced())
        assert included_in_single_type(d1, result)

    def test_seeded_greedy_stays_within_nv_construction(self, union_target):
        """Growing from D1 can only absorb non-violating trees, so the
        greedy result sits between L(D1) and the Theorem 4.8 optimum
        L(D1) | nv(D2, D1), agreeing with it on the bounded fragment.

        (Exact equality needs unboundedly many witnesses — nv here is the
        infinite family of all unary a-chains.)
        """
        from repro.core.lower import maximal_lower_union
        from repro.trees.generate import enumerate_trees

        d1, d2, union = union_target
        greedy = greedy_maximal_lower(union, max_size=4, seed_schema=d1.reduced())
        nv_based = maximal_lower_union(d1, d2)
        assert included_in_single_type(greedy, nv_based)
        for tree in enumerate_trees(nv_based, 4):
            assert greedy.accepts(tree), tree

    def test_on_single_type_target_absorbs_all_bounded_members(self, store_schema):
        from repro.trees.generate import enumerate_trees

        result = greedy_maximal_lower(store_schema, max_size=6)
        assert included_in_single_type(result, store_schema)
        for tree in enumerate_trees(store_schema, 6):
            assert result.accepts(tree), tree

    def test_empty_target(self):
        empty = SingleTypeEDTD(
            alphabet={"a"}, types=set(), rules={}, starts=set(), mu={}
        )
        result = greedy_maximal_lower(empty, max_size=3)
        assert result.is_empty_language()
