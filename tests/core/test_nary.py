"""Tests for n-ary merging (fold correctness = closure idempotence)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core.nary import merge_all, merge_all_direct, union_all
from repro.errors import SchemaError
from repro.families.random_schemas import random_single_type_edtd
from repro.families.real_world import atom_feed, purchase_orders_v1, rss_feed
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent


class TestMergeAll:
    def test_single_input_is_identity(self, store_schema):
        merged = merge_all([store_schema])
        assert single_type_equivalent(merged, store_schema)

    def test_empty_input_rejected(self):
        with pytest.raises(SchemaError):
            merge_all([])
        with pytest.raises(SchemaError):
            union_all([])

    def test_contains_every_input(self):
        schemas = [rss_feed(), atom_feed(), purchase_orders_v1()]
        merged = merge_all(schemas)
        for schema in schemas:
            assert included_in_single_type(schema, merged)

    def test_fold_equals_direct_construction(self):
        rng = random.Random(31)
        schemas = [
            random_single_type_edtd(rng, num_labels=2, num_types=3)
            for _ in range(3)
        ]
        folded = merge_all(schemas)
        direct = merge_all_direct(schemas)
        assert single_type_equivalent(folded, direct)

    def test_order_independence(self):
        rng = random.Random(32)
        schemas = [
            random_single_type_edtd(rng, num_labels=2, num_types=3)
            for _ in range(3)
        ]
        reference = merge_all(schemas)
        for permutation in itertools.permutations(schemas):
            assert single_type_equivalent(merge_all(list(permutation)), reference)

    def test_is_minimal_upper_of_nary_union(self):
        from repro.core.decision import is_minimal_upper_approximation

        schemas = [rss_feed(), atom_feed(), purchase_orders_v1()]
        merged = merge_all(schemas)
        assert is_minimal_upper_approximation(merged, union_all(schemas))

    def test_no_intermediate_minimization_same_language(self):
        rng = random.Random(33)
        schemas = [
            random_single_type_edtd(rng, num_labels=2, num_types=3)
            for _ in range(3)
        ]
        assert single_type_equivalent(
            merge_all(schemas, minimize_intermediates=False),
            merge_all(schemas),
        )
