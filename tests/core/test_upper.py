"""Tests for minimal upper XSD-approximations (Section 3)."""

from __future__ import annotations

import random

import pytest

from repro.closure.closure import bounded_closure
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)
from repro.families.hard import example_2_6, theorem_4_3_d1_d2
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.trees.generate import enumerate_all_trees, enumerate_trees
from repro.trees.tree import parse_tree


class TestConstruction31:
    def test_result_is_single_type(self):
        upper = minimal_upper_approximation(example_2_6())
        assert is_single_type(upper)

    def test_contains_input_language(self):
        edtd = example_2_6()
        upper = minimal_upper_approximation(edtd)
        assert included_in_single_type(edtd, upper)

    def test_fixed_point_on_single_type_input(self, store_schema):
        upper = minimal_upper_approximation(store_schema)
        assert single_type_equivalent(upper, store_schema)

    def test_defines_closure_on_bounded_universe(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = minimal_upper_approximation(union)
        members = enumerate_trees(union, 6)
        closure = bounded_closure(members, max_size=6)
        upper_members = set(enumerate_trees(upper, 5))
        # Everything derivable is admitted ...
        assert {t for t in closure if t.size() <= 5} <= upper_members
        # ... and everything admitted (within the bound) is derivable.
        assert upper_members <= set(closure)

    def test_empty_language(self):
        empty = EDTD(alphabet={"a"}, types=set(), rules={}, starts=set(), mu={})
        upper = minimal_upper_approximation(empty)
        assert upper.is_empty_language()

    def test_minimize_flag(self):
        upper = minimal_upper_approximation(example_2_6(), minimize=True)
        plain = minimal_upper_approximation(example_2_6())
        assert single_type_equivalent(upper, plain)
        assert len(upper.types) <= len(plain.types)

    @pytest.mark.parametrize("seed", range(8))
    def test_upper_contains_random_edtds(self, seed):
        edtd = random_edtd(random.Random(seed), num_labels=3, num_types=5)
        upper = minimal_upper_approximation(edtd)
        assert included_in_single_type(edtd, upper), seed

    @pytest.mark.parametrize("seed", range(6))
    def test_idempotence_random(self, seed):
        edtd = random_edtd(random.Random(50 + seed), num_labels=2, num_types=4)
        upper = minimal_upper_approximation(edtd)
        again = minimal_upper_approximation(upper)
        assert single_type_equivalent(upper, again), seed


class TestUpperUnion:
    def test_contains_both(self, ab_star_schema, ab_pair_schema):
        upper = upper_union(ab_star_schema, ab_pair_schema)
        assert included_in_single_type(ab_star_schema, upper)
        assert included_in_single_type(ab_pair_schema, upper)

    def test_theorem_4_3_union_overshoot(self):
        # The approximation of D1 | D2 must admit trees outside the union
        # (the union is not ST-definable).
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        mixed = parse_tree("a(a(b), a)")
        assert not union.accepts(mixed)
        assert upper.accepts(mixed)

    def test_pruning_guide_narrower_than_union(self):
        # Guiding union(d1, d2) by d2 alone prunes ancestor states d2 cannot
        # reach; the content models must shed the pruned child labels with
        # them (regression: DFAXSD used to reject the inconsistent pair).
        d1, d2 = theorem_4_3_d1_d2()
        blind = upper_union(d1, d2)
        guided = upper_union(d1, d2, strategy="schema-guided", guide=d2)
        assert len(guided.types) <= len(blind.types)
        # Exact on the guide's own language ...
        assert included_in_single_type(d2, guided)
        # ... and indistinguishable from blind inside the guide's universe.
        assert single_type_equivalent(
            upper_intersection(guided, d2), upper_intersection(blind, d2)
        )

    def test_pruning_guide_drops_unreachable_roots(self):
        # complement(d1) admits root labels d1's ancestor guide never
        # accepts; pruning must drop them from the start set (regression:
        # DFAXSD used to reject a start symbol with no initial transition).
        d1, _ = theorem_4_3_d1_d2()
        blind = upper_complement(d1)
        guided = upper_complement(d1, strategy="schema-guided", guide=d1)
        assert single_type_equivalent(
            upper_intersection(guided, d1), upper_intersection(blind, d1)
        )

    def test_exact_when_union_is_single_type(self, ab_star_schema):
        sub = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        upper = upper_union(ab_star_schema, sub)
        assert single_type_equivalent(upper, ab_star_schema)

    def test_quadratic_size_bound(self):
        from repro.families.hard import theorem_3_6_family

        d1, d2 = theorem_3_6_family(3)
        upper = upper_union(d1, d2)
        assert len(upper.types) <= len(d1.types) * len(d2.types) + len(d1.types) + len(d2.types)


class TestUpperIntersection:
    def test_exact(self, ab_star_schema, ab_universe_4):
        other = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x+", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        inter = upper_intersection(ab_star_schema, other)
        for tree in ab_universe_4:
            assert inter.accepts(tree) == (
                ab_star_schema.accepts(tree) and other.accepts(tree)
            ), tree


class TestUpperComplement:
    def test_contains_complement(self, ab_pair_schema, ab_universe_4):
        upper = upper_complement(ab_pair_schema)
        for tree in ab_universe_4:
            if not ab_pair_schema.accepts(tree):
                assert upper.accepts(tree), tree

    def test_exact_for_leaf_schema(self, ab_universe_4):
        # The complement of {single a-leaf} is ST-definable (no exchange
        # between members can ever produce the lone a-leaf).
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r"},
            rules={"r": "~"},
            starts={"r"},
            mu={"r": "a"},
        )
        upper = upper_complement(schema)
        for tree in ab_universe_4:
            assert upper.accepts(tree) == (not schema.accepts(tree)), tree

    def test_overshoot_happens_when_needed(self, a_universe_5):
        # Complement of unary a-chains: "some node has >= 2 children".
        # Its minimal upper approximation over {a} must overshoot:
        # closure(complement) includes chains again.
        chains = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t?"},
            starts={"t"},
            mu={"t": "a"},
        )
        upper = upper_complement(chains)
        from repro.schemas.ops import complement_edtd

        comp = complement_edtd(chains)
        overshoot = [
            t for t in a_universe_5 if upper.accepts(t) and not comp.accepts(t)
        ]
        assert overshoot  # genuine approximation, not exact


class TestUpperDifference:
    def test_contains_difference(self, ab_star_schema, ab_pair_schema, ab_universe_4):
        upper = upper_difference(ab_star_schema, ab_pair_schema)
        for tree in ab_universe_4:
            if ab_star_schema.accepts(tree) and not ab_pair_schema.accepts(tree):
                assert upper.accepts(tree), tree

    def test_subset_of_minuend_when_possible(self, ab_star_schema, ab_pair_schema):
        # Here L1 - L2 is ST-definable (b* minus exactly-two-b), so the
        # approximation is exact and contained in L1.
        upper = upper_difference(ab_star_schema, ab_pair_schema)
        assert included_in_single_type(upper, ab_star_schema)
        assert not upper.accepts(parse_tree("a(b, b)"))
        assert upper.accepts(parse_tree("a(b)"))
        assert upper.accepts(parse_tree("a(b, b, b)"))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_difference_upper(self, seed):
        rng = random.Random(300 + seed)
        left = random_single_type_edtd(rng, num_labels=2, num_types=4)
        right = random_single_type_edtd(rng, num_labels=2, num_types=4)
        upper = upper_difference(left, right)
        universe = enumerate_all_trees(left.alphabet | right.alphabet, 4)
        for tree in universe:
            if left.accepts(tree) and not right.accepts(tree):
                assert upper.accepts(tree), (seed, tree)


class TestGuidedContentUnions:
    """The schema-guided strategy threads the guide through Construction
    3.1's content-model unions (not just the ancestor determinization):
    each union is determinized under the universal guide over the
    symbols actually leaving its subset state.  Differential invariant:
    with no pruning guide the guided path reproduces the blind result
    exactly."""

    def _schemas(self):
        yield example_2_6()
        yield theorem_4_3_d1_d2()[0]
        for seed in range(4):
            rng = random.Random(7000 + seed)
            yield random_edtd(rng, num_labels=3, num_types=5)

    def test_guided_equals_blind_with_no_pruning(self):
        from repro.schemas.text_format import dumps

        for edtd in self._schemas():
            blind = minimal_upper_approximation(edtd, minimize=True)
            guided = minimal_upper_approximation(
                edtd, minimize=True, strategy="schema-guided"
            )
            assert dumps(guided) == dumps(blind), edtd

    def test_guided_content_union_kernel_really_runs(self):
        from repro.strings import schema_guided as sg

        sg.clear_caches()
        minimal_upper_approximation(example_2_6(), strategy="schema-guided")
        stats = sg.cache_stats()["schema_guided_min_dfa"]
        assert stats["misses"] > 0
        # A repeat run is pure memo hits: the key covers NFA and guide.
        before = stats["misses"]
        minimal_upper_approximation(example_2_6(), strategy="schema-guided")
        after = sg.cache_stats()["schema_guided_min_dfa"]
        assert after["misses"] == before
        assert after["hits"] > 0

    def test_pruning_guide_restricts_content_models(self, store_schema):
        # Guided by the schema itself the approximation stays exact on
        # guide-valid documents.
        upper = minimal_upper_approximation(
            store_schema, strategy="schema-guided", guide=store_schema
        )
        assert upper.accepts(parse_tree("store(item(price))"))
        assert not upper.accepts(parse_tree("store(price)"))
