"""Tests for the compatibility checker."""

from __future__ import annotations

from repro.core.compat import Compatibility, check_compatibility
from repro.families.real_world import purchase_orders_v1, purchase_orders_v2
from repro.schemas.st_edtd import SingleTypeEDTD


class TestCompatibility:
    def test_backward_compatible_evolution(self):
        report = check_compatibility(purchase_orders_v1(), purchase_orders_v2())
        assert report.verdict is Compatibility.BACKWARD
        assert report.backward_compatible
        assert not report.forward_compatible
        # The new-only witness uses a v2 feature.
        assert report.new_only is not None
        labels = report.new_only.labels()
        assert "discount" in labels or "priority" in labels

    def test_forward_compatible_evolution(self):
        report = check_compatibility(purchase_orders_v2(), purchase_orders_v1())
        assert report.verdict is Compatibility.FORWARD
        assert report.old_only is not None

    def test_equivalent(self, store_schema):
        report = check_compatibility(store_schema, store_schema.relabel_types())
        assert report.verdict is Compatibility.EQUIVALENT
        assert report.old_only is None and report.new_only is None

    def test_breaking_change(self):
        old = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x"},
            rules={"r": "x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        new = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "y"},
            rules={"r": "y", "y": "~"},
            starts={"r"},
            mu={"r": "a", "y": "c"},
        )
        report = check_compatibility(old, new)
        assert report.verdict is Compatibility.BREAKING
        assert old.accepts(report.old_only)
        assert not new.accepts(report.old_only)
        assert new.accepts(report.new_only)
        assert not old.accepts(report.new_only)
