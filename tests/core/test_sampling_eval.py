"""Tests for Monte Carlo slack estimation."""

from __future__ import annotations

import random

from repro.core.sampling_eval import SlackEstimate, estimate_slack_ratio
from repro.core.upper import upper_union
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.ops import edtd_union


class TestSlackEstimate:
    def test_ratio_and_stderr(self):
        estimate = SlackEstimate(samples=100, outside=25)
        assert estimate.ratio == 0.25
        assert 0.04 < estimate.stderr < 0.05

    def test_zero_samples(self):
        estimate = SlackEstimate(samples=0, outside=0)
        assert estimate.ratio == 0.0
        assert estimate.stderr == 0.0


class TestEstimation:
    def test_exact_approximation_has_zero_ratio(self, store_schema):
        estimate = estimate_slack_ratio(
            store_schema, store_schema, random.Random(1), samples=50
        )
        assert estimate.outside == 0

    def test_genuine_overshoot_detected(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        estimate = estimate_slack_ratio(
            union, upper, random.Random(2), target_size=10, samples=150
        )
        # Mixed chains/branching documents dominate larger sizes.
        assert estimate.outside > 0
        assert 0.0 < estimate.ratio <= 1.0

    def test_seed_determinism(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        e1 = estimate_slack_ratio(union, upper, random.Random(3), samples=60)
        e2 = estimate_slack_ratio(union, upper, random.Random(3), samples=60)
        assert e1 == e2

    def test_qualitative_agreement_with_exact_counts(self):
        """Sampling and exact counting must agree on which of two
        approximations is tighter."""
        from repro.core.quality import upper_quality

        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        # Exact counts say the upper approximation has genuine slack:
        quality = upper_quality(union, upper, max_size=7)
        assert quality.total_slack() > 0
        # ... and sampling detects the same (vs the zero-slack identity).
        overshoot = estimate_slack_ratio(
            union, upper, random.Random(4), target_size=8, samples=120
        )
        identity = estimate_slack_ratio(
            union, union, random.Random(4), target_size=8, samples=120
        )
        assert overshoot.ratio > identity.ratio == 0.0
