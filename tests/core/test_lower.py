"""Tests for maximal lower XSD-approximations (Section 4.2.2)."""

from __future__ import annotations

import random

import pytest

from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
)
from repro.core.lower import (
    _PairContext,
    is_c_type,
    is_s_type,
    maximal_lower_union,
    non_violating,
    swap_language_edtd,
)
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import theorem_4_3_d1_d2
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.trees.generate import enumerate_all_trees, enumerate_trees
from repro.trees.tree import Tree, parse_tree, unary_tree


@pytest.fixture
def t43():
    d1, d2 = theorem_4_3_d1_d2()
    return d1.reduced(), d2.reduced()


class TestTypeClassification:
    def test_s_type_with_bottom_d2(self, t43):
        d1, d2 = t43
        ctx = _PairContext(d1, d2)
        # anc-str (a, b): defined in D1 (type tb), undefined in D2.
        pair = (ctx.step(ctx.start_pair("a"), "b"))
        assert pair[0] is not None and pair[1] is None
        assert is_s_type(ctx, pair)
        assert is_c_type(ctx, pair)

    def test_root_pair_is_s_type(self, t43):
        # Subtrees at the root: L(D1) vs L(D2) — D1 has a^m(b) trees D2
        # lacks, so the root pair is an s-type.
        d1, d2 = t43
        ctx = _PairContext(d1, d2)
        pair = ctx.start_pair("a")
        assert is_s_type(ctx, pair)

    def test_bottom_d1_never_s_or_c(self, t43):
        d1, d2 = t43
        ctx = _PairContext(d1, d2)
        pair = (None, "sa")
        assert not is_s_type(ctx, pair)
        assert not is_c_type(ctx, pair)

    def test_s_type_via_inclusion(self):
        # D1-subtrees included in D2-subtrees at the matching pair: not s.
        d1 = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        d2 = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x*", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        ctx = _PairContext(d1.reduced(), d2.reduced())
        root = ctx.start_pair("a")
        assert not is_s_type(ctx, root)  # L1 = {a(b)} subset of L2


class TestSwapLanguage:
    def test_swap_language_members(self, t43):
        d1, d2 = t43
        ctx = _PairContext(d1, d2)
        # In this schema the a-step is a self-loop in both type automata, so
        # the pair at every a-spine depth (root included) is the same.
        target = ctx.step(ctx.start_pair("a"), "a")
        assert target == ("ta", "sa")
        assert target == ctx.start_pair("a")
        swap = swap_language_edtd(ctx, target)
        # Deep swaps: a^m(b) spine with the a-subtree replaced by L(D2).
        assert swap.accepts(parse_tree("a(a)"))
        assert swap.accepts(parse_tree("a(a(a, a))"))
        # Root swaps: any member of L(D2).
        assert swap.accepts(parse_tree("a(a, a)"))
        assert swap.accepts(parse_tree("a"))
        # Non-members: D1-only trees and anything with b below the swap.
        assert not swap.accepts(parse_tree("a(b)"))
        assert not swap.accepts(parse_tree("b"))
        assert not swap.accepts(parse_tree("a(a(b))"))


class TestNonViolating:
    def test_nv_subset_of_d2(self, t43, ab_universe_5):
        d1, d2 = t43
        nv = non_violating(d2, d1)
        for tree in ab_universe_5:
            if nv.accepts(tree):
                assert d2.accepts(tree), tree

    def test_nv_is_single_type(self, t43):
        d1, d2 = t43
        assert is_single_type(non_violating(d2, d1))

    def test_nv_of_theorem_4_3_is_unary_chains(self, t43, ab_universe_5):
        # Branching D2-trees violate: exchanged with long a^m(b) chains
        # they escape the union.  Only the unary all-a chains survive.
        d1, d2 = t43
        nv = non_violating(d2, d1)
        for tree in ab_universe_5:
            expected = d2.accepts(tree) and tree.is_unary()
            assert nv.accepts(tree) == expected, tree

    def test_nv_definition_extensionally(self, t43, ab_universe_4):
        # Direct check of Definition 4.4 on the bounded universe: t is
        # non-violating iff closure(t1, t) stays in the union for every
        # (bounded) t1 in L(D1).
        from repro.closure.closure import closure_of_pair

        d1, d2 = t43
        union = edtd_union(d1, d2)
        nv = non_violating(d2, d1)
        d1_members = enumerate_trees(d1, 6)
        for tree in ab_universe_4:
            if not d2.accepts(tree):
                continue
            violates = False
            for t1 in d1_members:
                for result in closure_of_pair(t1, tree, max_size=7):
                    if not union.accepts(result):
                        violates = True
                        break
                if violates:
                    break
            if violates:
                assert not nv.accepts(tree), tree
            else:
                assert nv.accepts(tree), tree

    def test_nv_with_included_d2_is_d2(self, ab_star_schema):
        smaller = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        nv = non_violating(smaller, ab_star_schema)
        assert single_type_equivalent(nv, smaller)

    def test_nv_empty_inputs(self, ab_star_schema):
        empty = SingleTypeEDTD(
            alphabet={"a", "b"}, types=set(), rules={}, starts=set(), mu={}
        )
        assert non_violating(empty, ab_star_schema).is_empty_language()
        nv = non_violating(ab_star_schema, empty)
        assert single_type_equivalent(nv, ab_star_schema)


class TestMaximalLowerUnion:
    def test_contains_d1(self, t43):
        d1, d2 = t43
        lower = maximal_lower_union(d1, d2)
        assert included_in_single_type(d1, lower)

    def test_is_lower_approximation(self, t43):
        d1, d2 = t43
        lower = maximal_lower_union(d1, d2)
        assert is_lower_approximation(lower, edtd_union(d1, d2))

    def test_is_single_type(self, t43):
        d1, d2 = t43
        assert is_single_type(maximal_lower_union(d1, d2))

    def test_maximality_verdict(self, t43):
        d1, d2 = t43
        lower = maximal_lower_union(d1, d2)
        verdict = is_maximal_lower_approximation(
            lower, edtd_union(d1, d2), max_size=5
        )
        assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND

    def test_strict_sub_approximation_refuted(self, t43):
        d1, d2 = t43
        verdict = is_maximal_lower_approximation(d1, edtd_union(d1, d2), max_size=4)
        assert verdict.outcome is Maximality.NOT_MAXIMAL
        assert verdict.witness is not None

    def test_not_lower_detected(self, t43):
        d1, d2 = t43
        upper = minimal_upper_approximation(edtd_union(d1, d2))
        verdict = is_maximal_lower_approximation(upper, edtd_union(d1, d2), max_size=3)
        assert verdict.outcome is Maximality.NOT_LOWER

    def test_symmetric_direction(self, t43, ab_universe_5):
        # Fixing D2 instead: the maximal lower approximation containing
        # L(D2) keeps all of D2 and the short chains of D1 it can absorb.
        d1, d2 = t43
        lower = maximal_lower_union(d2, d1)
        union = edtd_union(d1, d2)
        assert included_in_single_type(d2, lower)
        assert is_lower_approximation(lower, union)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_pairs_lower_property(self, seed):
        rng = random.Random(400 + seed)
        d1 = random_single_type_edtd(rng, num_labels=2, num_types=4)
        d2 = random_single_type_edtd(rng, num_labels=2, num_types=4)
        lower = maximal_lower_union(d1, d2)
        union = edtd_union(d1, d2)
        assert included_in_single_type(d1, lower), seed
        universe = enumerate_all_trees(d1.alphabet | d2.alphabet, 4)
        for tree in universe:
            if lower.accepts(tree):
                assert union.accepts(tree), (seed, tree)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_pairs_nv_never_violates(self, seed):
        from repro.closure.closure import closure_of_pair

        rng = random.Random(500 + seed)
        d1 = random_single_type_edtd(rng, num_labels=2, num_types=3)
        d2 = random_single_type_edtd(rng, num_labels=2, num_types=3)
        union = edtd_union(d1, d2)
        nv = non_violating(d2, d1)
        d1_members = enumerate_trees(d1, 5)
        for tree in enumerate_trees(nv, 4):
            for t1 in d1_members:
                for result in closure_of_pair(t1, tree, max_size=6):
                    assert union.accepts(result), (seed, tree, t1, result)
