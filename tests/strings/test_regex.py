"""Unit tests for the regex AST and parser."""

from __future__ import annotations

import pytest

from repro.errors import RegexSyntaxError
from repro.strings.ops import as_min_dfa, enumerate_words, equivalent
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Star,
    Sym,
    Union,
    concat,
    parse,
    sym,
    union,
)


class TestParsing:
    def test_symbol(self):
        assert parse("a") == Sym("a")

    def test_multi_char_identifier(self):
        assert parse("item_1") == Sym("item_1")

    def test_epsilon(self):
        assert parse("~") == EPSILON

    def test_empty_language(self):
        assert parse("#") == EMPTY

    def test_union(self):
        assert parse("a | b") == Union(Sym("a"), Sym("b"))

    def test_concat_comma(self):
        assert parse("a, b") == Concat(Sym("a"), Sym("b"))

    def test_concat_juxtaposition(self):
        assert parse("a b") == Concat(Sym("a"), Sym("b"))

    def test_star(self):
        assert parse("a*") == Star(Sym("a"))

    def test_plus(self):
        assert parse("a+") == Plus(Sym("a"))

    def test_opt(self):
        assert parse("a?") == Opt(Sym("a"))

    def test_double_postfix(self):
        assert parse("a*?") == Opt(Star(Sym("a")))

    def test_precedence_postfix_over_concat(self):
        assert parse("a, b*") == Concat(Sym("a"), Star(Sym("b")))

    def test_precedence_concat_over_union(self):
        assert parse("a, b | c") == Union(Concat(Sym("a"), Sym("b")), Sym("c"))

    def test_parentheses(self):
        assert parse("(a | b)*") == Star(Union(Sym("a"), Sym("b")))

    def test_group_concat(self):
        assert parse("a, (b | c)") == Concat(Sym("a"), Union(Sym("b"), Sym("c")))

    def test_unbalanced_parenthesis(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a")

    def test_trailing_garbage(self):
        with pytest.raises(RegexSyntaxError):
            parse("a )")

    def test_empty_input(self):
        with pytest.raises(RegexSyntaxError):
            parse("")

    def test_bad_character(self):
        with pytest.raises(RegexSyntaxError):
            parse("a $ b")

    def test_str_round_trip(self):
        for source in ["a", "a, b", "a | b", "(a | b)*", "a+, b?", "~", "#", "(a, b)+"]:
            expr = parse(source)
            assert parse(str(expr)) == expr, source


class TestSemantics:
    def test_nullable(self):
        assert parse("a*").nullable()
        assert parse("a?").nullable()
        assert parse("~").nullable()
        assert not parse("a").nullable()
        assert not parse("a+").nullable()
        assert parse("(a?)+").nullable()
        assert not parse("#").nullable()

    def test_symbols(self):
        assert parse("(a | b)*, c").symbols() == {"a", "b", "c"}

    def test_rpn_size(self):
        assert parse("a").rpn_size() == 1
        assert parse("a, b").rpn_size() == 3
        assert parse("(a | b)*").rpn_size() == 4

    def test_denotes_empty_language(self):
        assert parse("#").denotes_empty_language()
        assert parse("a, #").denotes_empty_language()
        assert not parse("# | a").denotes_empty_language()
        assert not parse("#*").denotes_empty_language()
        assert parse("#+").denotes_empty_language()


class TestSmartConstructors:
    def test_concat_identities(self):
        assert concat(EPSILON, Sym("a")) == Sym("a")
        assert concat(Sym("a"), EPSILON) == Sym("a")
        assert concat(Sym("a"), EMPTY) == EMPTY
        assert concat() == EPSILON

    def test_union_identities(self):
        assert union(EMPTY, Sym("a")) == Sym("a")
        assert union(Sym("a"), Sym("a")) == Sym("a")
        assert union() == EMPTY

    def test_operators(self):
        assert (sym("a") | sym("b")) == Union(Sym("a"), Sym("b"))
        assert (sym("a") + sym("b")) == Concat(Sym("a"), Sym("b"))
        assert sym("a").star() == Star(Sym("a"))
        assert sym("a").plus() == Plus(Sym("a"))
        assert sym("a").opt() == Opt(Sym("a"))


class TestLanguages:
    @pytest.mark.parametrize(
        ("source", "members", "non_members"),
        [
            ("a, b", ["ab"], ["", "a", "ba", "abb"]),
            ("a | b", ["a", "b"], ["", "ab"]),
            ("a*", ["", "a", "aaa"], ["b"]),
            ("a+", ["a", "aa"], [""]),
            ("a?", ["", "a"], ["aa"]),
            ("(a, b)+", ["ab", "abab"], ["", "a", "aba"]),
            ("~", [""], ["a"]),
            ("#", [], ["", "a"]),
            ("a, (b | c)*, a", ["aa", "abca"], ["a", "ab"]),
        ],
    )
    def test_membership(self, source, members, non_members):
        dfa = as_min_dfa(source)
        for word in members:
            assert dfa.accepts(word), (source, word)
        for word in non_members:
            assert not dfa.accepts(word), (source, word)

    def test_plus_equals_concat_star(self):
        assert equivalent("a+", "a, a*")

    def test_opt_equals_union_epsilon(self):
        assert equivalent("a?", "a | ~")

    def test_enumerate_small(self):
        words = list(enumerate_words("a | a, b", 2))
        assert words == [("a",), ("a", "b")]
