"""Tests for the subset construction and minimization."""

from __future__ import annotations

import pytest

from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.minimize import minimal_dfa_equal, minimize_dfa, moore_partition
from repro.strings.ops import as_min_dfa, as_nfa, equivalent


class TestDeterminize:
    def test_preserves_language(self):
        nfa = as_nfa("(a | b)*, a, b")
        dfa = determinize(nfa)
        assert equivalent(dfa, nfa)

    def test_result_is_deterministic(self):
        dfa = determinize(as_nfa("a | a, b"))
        # DFA type already enforces determinism; just sanity-check runs.
        assert dfa.accepts("a")
        assert dfa.accepts("ab")
        assert not dfa.accepts("b")

    def test_keep_empty_gives_complete_dfa(self):
        dfa = determinize(as_nfa("a"), keep_empty=True)
        assert dfa.is_complete()

    def test_partial_by_default(self):
        dfa = determinize(as_nfa("a"))
        assert frozenset() not in dfa.states

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exponential_blowup_family(self, n):
        nfa = nth_from_end_is("a", "b", n)
        dfa = minimize_dfa(determinize(nfa))
        assert len(nfa.states) == n + 2
        assert len(dfa.states) == 2 ** (n + 1)


class TestMinimize:
    def test_minimal_size_known_language(self):
        # (ab)* needs 2 states trim (+1 sink when complete).
        dfa = minimize_dfa(as_min_dfa("(a, b)*"))
        assert len(dfa.states) == 2

    def test_minimize_idempotent(self):
        dfa = as_min_dfa("a, (b | c)*, a")
        again = minimize_dfa(dfa)
        assert len(again.states) == len(dfa.states)
        assert equivalent(again, dfa)

    def test_complete_flag_keeps_sink(self):
        trim = minimize_dfa(as_min_dfa("a"))
        complete = minimize_dfa(as_min_dfa("a"), complete=True)
        assert len(complete.states) == len(trim.states) + 1
        assert complete.is_complete()

    def test_merges_equivalent_states(self):
        # A deliberately redundant DFA for a*: states 0,1 both loop/accept.
        dfa = DFA(
            {0, 1},
            {"a"},
            {(0, "a"): 1, (1, "a"): 0},
            0,
            {0, 1},
        )
        assert len(minimize_dfa(dfa).states) == 1

    def test_empty_language(self):
        dfa = DFA({0}, {"a"}, {}, 0, set())
        minimal = minimize_dfa(dfa)
        assert minimal.is_empty_language()
        assert len(minimal.states) == 1

    def test_minimal_dfa_equal_positive(self):
        assert minimal_dfa_equal(as_min_dfa("a | b, a"), as_min_dfa("b?, a"))

    def test_minimal_dfa_equal_negative(self):
        assert not minimal_dfa_equal(as_min_dfa("a"), as_min_dfa("a?"))

    def test_minimal_dfa_equal_different_alphabets(self):
        assert not minimal_dfa_equal(as_min_dfa("a"), as_min_dfa("c"))


class TestMoorePartition:
    def test_refines_by_output(self):
        states = [0, 1, 2]
        delta = {(0, "a"): 1, (1, "a"): 2, (2, "a"): 2}
        partition = moore_partition(states, ["a"], delta, {0: "x", 1: "x", 2: "y"})
        assert partition[0] != partition[1]  # 0 steps to x-class, 1 steps to y
        assert partition[1] != partition[2]

    def test_merges_bisimilar(self):
        states = [0, 1]
        delta = {(0, "a"): 1, (1, "a"): 0}
        partition = moore_partition(states, ["a"], delta, {0: "x", 1: "x"})
        assert partition[0] == partition[1]

    def test_empty_alphabet(self):
        partition = moore_partition([0, 1], [], {}, {0: "x", 1: "y"})
        assert partition[0] != partition[1]
