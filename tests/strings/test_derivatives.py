"""Tests for Brzozowski derivatives, incl. differential testing against the
Glushkov pipeline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings.derivatives import (
    derivative,
    dfa_from_regex,
    matches,
    normalize,
    word_derivative,
)
from repro.strings.determinize import determinize
from repro.strings.glushkov import glushkov_nfa
from repro.strings.minimize import minimize_dfa
from repro.strings.ops import equivalent
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Star,
    Sym,
    Union,
    parse,
)


class TestNormalize:
    def test_union_flatten_dedupe_sort(self):
        expr = Union(Sym("b"), Union(Sym("a"), Sym("b")))
        normalized = normalize(expr)
        assert normalized == normalize(Union(Sym("a"), Sym("b")))

    def test_union_drops_empty(self):
        assert normalize(Union(EMPTY, Sym("a"))) == Sym("a")

    def test_concat_right_associated(self):
        expr = Concat(Concat(Sym("a"), Sym("b")), Sym("c"))
        assert normalize(expr) == Concat(Sym("a"), Concat(Sym("b"), Sym("c")))

    def test_star_of_star(self):
        assert normalize(Star(Star(Sym("a")))) == Star(Sym("a"))

    def test_star_of_opt(self):
        assert normalize(Star(Opt(Sym("a")))) == Star(Sym("a"))

    def test_plus_expansion(self):
        assert normalize(Plus(Sym("a"))) == Concat(Sym("a"), Star(Sym("a")))

    def test_opt_of_nullable_collapses(self):
        assert normalize(Opt(Star(Sym("a")))) == Star(Sym("a"))

    def test_language_preserved(self):
        for source in ["a, b | b, a", "(a | b)*, a", "a+, b?", "(a?)+"]:
            expr = parse(source)
            assert equivalent(normalize(expr), expr), source


class TestDerivative:
    def test_symbol(self):
        assert derivative(Sym("a"), "a") == EPSILON
        assert derivative(Sym("a"), "b") == EMPTY

    def test_concat_non_nullable(self):
        assert derivative(parse("a, b"), "a") == Sym("b")
        assert derivative(parse("a, b"), "b") == EMPTY

    def test_concat_nullable_head(self):
        d = derivative(parse("a?, b"), "b")
        assert d == EPSILON

    def test_star(self):
        d = derivative(parse("(a, b)*"), "a")
        assert equivalent(d, parse("b, (a, b)*"))

    def test_word_derivative(self):
        d = word_derivative(parse("a, b, c"), "ab")
        assert d == Sym("c")

    def test_matches(self):
        expr = parse("(a | b)*, a")
        assert matches(expr, "ba")
        assert not matches(expr, "ab")
        assert not matches(expr, "")


class TestDerivativeAutomaton:
    @pytest.mark.parametrize(
        "source",
        ["a", "~", "#", "a, b", "(a | b)*, a", "a+, b?", "(a, b | b, a)+"],
    )
    def test_equivalent_to_glushkov_route(self, source):
        expr = parse(source)
        derivative_dfa = dfa_from_regex(expr, alphabet={"a", "b"})
        glushkov_dfa = determinize(glushkov_nfa(expr))
        assert equivalent(derivative_dfa, glushkov_dfa), source

    def test_derivative_dfa_close_to_minimal(self):
        expr = parse("(a | b)*, a, (a | b)")
        derivative_dfa = dfa_from_regex(expr)
        minimal = minimize_dfa(derivative_dfa)
        # Derivative automata are small; within 2x of minimal here.
        assert len(derivative_dfa.states) <= 2 * len(minimal.states)


def regexes():
    atoms = st.sampled_from([Sym("a"), Sym("b"), EPSILON, EMPTY])
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
            st.builds(Star, inner),
            st.builds(Plus, inner),
            st.builds(Opt, inner),
        ),
        max_leaves=8,
    )


def words_up_to(n: int):
    out = [()]
    frontier = [()]
    for _ in range(n):
        frontier = [w + (c,) for w in frontier for c in ("a", "b")]
        out.extend(frontier)
    return out


WORDS = words_up_to(4)


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_differential_membership(expr):
    """Derivative membership == Glushkov membership on all short words."""
    nfa = glushkov_nfa(expr)
    for word in WORDS:
        assert matches(expr, word) == nfa.accepts(word), (expr, word)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_differential_automata(expr):
    """The two regex-to-DFA pipelines build language-equal automata."""
    derivative_dfa = dfa_from_regex(expr, alphabet={"a", "b"})
    glushkov_dfa = determinize(glushkov_nfa(expr).with_alphabet({"a", "b"}))
    assert equivalent(derivative_dfa, glushkov_dfa), expr


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_normalize_preserves_language(expr):
    normalized = normalize(expr)
    nfa = glushkov_nfa(expr)
    nfa_norm = glushkov_nfa(normalized)
    for word in WORDS:
        assert nfa.accepts(word) == nfa_norm.accepts(word), (expr, word)
