"""Tests for the Glushkov construction and determinism of expressions."""

from __future__ import annotations

import pytest

from repro.strings.glushkov import glushkov_nfa, is_deterministic_expression
from repro.strings.ops import equivalent
from repro.strings.regex import parse


class TestGlushkov:
    @pytest.mark.parametrize(
        "source",
        [
            "a",
            "~",
            "#",
            "a, b",
            "a | b",
            "a*",
            "a+",
            "a?",
            "(a | b)*, a, (a | b)",
            "(a, b)+ | c?",
            "a, # | b",
            "(#)* , a",
        ],
    )
    def test_language_matches_expression(self, source):
        expr = parse(source)
        assert equivalent(glushkov_nfa(expr), expr)

    def test_state_labeled(self):
        for source in ["(a | b)*, a", "a, a, a", "(a, b | b, a)+"]:
            assert glushkov_nfa(parse(source)).is_state_labeled(), source

    def test_position_count(self):
        # One state per symbol occurrence plus the initial state.
        nfa = glushkov_nfa(parse("a, b, a"))
        assert len(nfa.states) == 4

    def test_empty_language_automaton(self):
        nfa = glushkov_nfa(parse("#"))
        assert nfa.is_empty_language()

    def test_epsilon_automaton(self):
        nfa = glushkov_nfa(parse("~"))
        assert nfa.accepts("")
        assert not nfa.accepts("a") if "a" in nfa.alphabet else True


class TestDeterminism:
    @pytest.mark.parametrize(
        "source",
        ["a", "a, b", "a | b", "a*, b", "(a, b)*", "a?, b"],
    )
    def test_deterministic_expressions(self, source):
        assert is_deterministic_expression(parse(source))

    @pytest.mark.parametrize(
        "source",
        [
            "a, b | a, c",       # classic one-ambiguity
            "(a | b)*, a",       # needs lookahead
            "a*, a",
        ],
    )
    def test_nondeterministic_expressions(self, source):
        assert not is_deterministic_expression(parse(source))
