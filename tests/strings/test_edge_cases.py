"""Edge-case coverage for the string substrate."""

from __future__ import annotations

import pytest

from repro.strings.builders import sigma_star
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.minimize import minimize_dfa
from repro.strings.nfa import NFA
from repro.strings.ops import as_min_dfa, count_words_by_length, enumerate_words, equivalent


class TestEmptyAlphabet:
    def test_dfa_empty_alphabet(self):
        dfa = DFA({0}, set(), {}, 0, {0})
        assert dfa.accepts("")
        assert dfa.is_complete()
        assert minimize_dfa(dfa).accepts("")

    def test_nfa_empty_alphabet(self):
        nfa = NFA({0}, set(), {}, {0}, {0})
        assert nfa.accepts(())
        assert not nfa.is_empty_language()
        assert determinize(nfa).accepts(())

    def test_counting_empty_alphabet(self):
        dfa = DFA({0}, set(), {}, 0, {0})
        assert count_words_by_length(dfa, 3) == [1, 0, 0, 0]


class TestSingletonStates:
    def test_self_loop_only(self):
        dfa = DFA({0}, {"a"}, {(0, "a"): 0}, 0, {0})
        assert equivalent(dfa, sigma_star({"a"}))

    def test_no_finals(self):
        dfa = DFA({0}, {"a"}, {(0, "a"): 0}, 0, set())
        assert dfa.is_empty_language()
        assert minimize_dfa(dfa).is_empty_language()


class TestNonStringSymbols:
    """The whole stack works over arbitrary hashable symbols (the schema
    layer relies on tuple-typed alphabets)."""

    def test_tuple_symbols(self):
        a, b = ("t", 1), ("t", 2)
        dfa = DFA({0, 1}, {a, b}, {(0, a): 1, (1, b): 1}, 0, {1})
        assert dfa.accepts([a, b, b])
        assert not dfa.accepts([b])
        minimal = minimize_dfa(dfa)
        assert minimal.accepts([a, b])

    def test_mixed_symbol_kinds(self):
        symbols = {("x",), 7, "s"}
        nfa = NFA(
            {0, 1},
            symbols,
            {(0, ("x",)): {1}, (0, 7): {1}, (0, "s"): {1}},
            {0},
            {1},
        )
        determinized = determinize(nfa)
        assert determinized.accepts([7])
        assert determinized.accepts([("x",)])

    def test_enumeration_with_tuple_symbols(self):
        a = ("only",)
        dfa = DFA({0, 1}, {a}, {(0, a): 1}, 0, {1})
        assert list(enumerate_words(dfa, 2)) == [(a,)]


class TestLargeAlphabet:
    def test_thirty_symbols(self):
        symbols = [f"s{i}" for i in range(30)]
        star = sigma_star(symbols)
        assert star.accepts(symbols)
        assert count_words_by_length(star, 2) == [1, 30, 900]


class TestReprSmoke:
    def test_reprs_do_not_crash(self):
        dfa = as_min_dfa("a, b | c")
        assert "DFA(" in repr(dfa)
        assert "NFA(" in repr(dfa.to_nfa())
