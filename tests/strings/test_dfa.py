"""Unit tests for repro.strings.dfa."""

from __future__ import annotations

import pytest

from repro.errors import AutomatonError
from repro.strings.dfa import DFA
from repro.strings.ops import as_min_dfa, equivalent


def ab_dfa() -> DFA:
    """Accepts a b* (partial: no b-transition from the initial state)."""
    return DFA(
        states={0, 1},
        alphabet={"a", "b"},
        transitions={(0, "a"): 1, (1, "b"): 1},
        initial=0,
        finals={1},
    )


class TestConstruction:
    def test_unknown_initial_rejected(self):
        with pytest.raises(AutomatonError):
            DFA({0}, {"a"}, {}, 9, set())

    def test_unknown_final_rejected(self):
        with pytest.raises(AutomatonError):
            DFA({0}, {"a"}, {}, 0, {9})

    def test_unknown_transition_state_rejected(self):
        with pytest.raises(AutomatonError):
            DFA({0}, {"a"}, {(0, "a"): 9}, 0, set())

    def test_unknown_symbol_rejected(self):
        with pytest.raises(AutomatonError):
            DFA({0}, {"a"}, {(0, "z"): 0}, 0, set())


class TestRuns:
    def test_accepts(self):
        assert ab_dfa().accepts("abb")

    def test_rejects(self):
        assert not ab_dfa().accepts("ba")

    def test_dead_run(self):
        assert ab_dfa().read("b") is None

    def test_read_final_state(self):
        assert ab_dfa().read("ab") == 1

    def test_accepts_empty_word(self):
        assert not ab_dfa().accepts_empty_word()
        assert as_min_dfa("a*").accepts_empty_word()

    def test_size(self):
        assert ab_dfa().size() == 2 + 2


class TestCompletion:
    def test_completed_is_complete(self):
        assert not ab_dfa().is_complete()
        assert ab_dfa().completed().is_complete()

    def test_completed_preserves_language(self):
        assert equivalent(ab_dfa().completed(), ab_dfa())

    def test_completed_extends_alphabet(self):
        extended = ab_dfa().completed({"c"})
        assert "c" in extended.alphabet
        assert equivalent(extended, ab_dfa())

    def test_complete_input_is_unchanged(self):
        complete = ab_dfa().completed()
        again = complete.completed()
        assert again.states == complete.states


class TestTrim:
    def test_trim_drops_sink(self):
        complete = ab_dfa().completed()
        trimmed = complete.trim()
        assert len(trimmed.states) == 2
        assert equivalent(trimmed, ab_dfa())

    def test_trim_keeps_initial_for_empty_language(self):
        dfa = DFA({0}, {"a"}, {(0, "a"): 0}, 0, set())
        trimmed = dfa.trim()
        assert trimmed.initial == 0
        assert trimmed.is_empty_language()


class TestBooleanOps:
    def test_intersection(self):
        result = as_min_dfa("(a|b)*").intersection(as_min_dfa("a, (a|b)*"))
        assert equivalent(result, "a, (a|b)*")

    def test_union(self):
        result = as_min_dfa("a").union(as_min_dfa("b"))
        assert equivalent(result, "a | b")

    def test_union_over_different_alphabets(self):
        result = as_min_dfa("a").union(as_min_dfa("c"))
        assert result.accepts("a")
        assert result.accepts("c")

    def test_difference(self):
        result = as_min_dfa("a*").difference(as_min_dfa("a, a"))
        assert result.accepts("")
        assert result.accepts("a")
        assert not result.accepts("aa")
        assert result.accepts("aaa")

    def test_complement_involution(self):
        original = as_min_dfa("a, b | b, a")
        assert equivalent(original.complement().complement(), original)

    def test_complement_membership_flips(self):
        comp = as_min_dfa("a, b").complement()
        assert not comp.accepts("ab")
        assert comp.accepts("")
        assert comp.accepts("ba")

    def test_empty_language(self):
        dfa = DFA({0}, {"a"}, {}, 0, set())
        assert dfa.is_empty_language()
        assert not ab_dfa().is_empty_language()


class TestStructure:
    def test_relabel_preserves_language(self):
        relabeled = ab_dfa().relabel()
        assert equivalent(relabeled, ab_dfa())

    def test_relabel_canonical_bfs_names(self):
        relabeled = ab_dfa().relabel("q")
        assert relabeled.initial == "q0"

    def test_isomorphic_to_self(self):
        assert ab_dfa().isomorphic_to(ab_dfa())

    def test_isomorphic_after_relabel(self):
        assert ab_dfa().isomorphic_to(ab_dfa().relabel())

    def test_not_isomorphic_different_language(self):
        assert not ab_dfa().isomorphic_to(as_min_dfa("b, a*").completed({"a", "b"}).trim())

    def test_to_nfa_language(self):
        assert equivalent(ab_dfa().to_nfa(), ab_dfa())
