"""Differential and regression tests for the bitmask kernels (PR 2).

* bitmask subset construction vs. the frozenset reference — identical (not
  just isomorphic) DFAs on >=250 randomized NFAs and the theorem-3.2
  blow-up family;
* Hopcroft refinement vs. the quadratic Moore reference — identical
  partitions (same block numbering), including non-boolean initial
  partitions;
* checkpoint compatibility — checkpoints are interchangeable between
  kernel and reference, resume to the same DFA, and budgets trip at the
  same state counts;
* the memo cache — interning, hit/miss counters, recorded-cost budget
  recharging, eviction bound.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import BudgetExceededError
from repro.families.hard import theorem_3_2_family
from repro.runtime.budget import Budget
from repro.schemas.type_automaton import type_automaton
from repro.strings.determinize import determinize, determinize_reference
from repro.strings.dfa import DFA
from repro.strings.kernels import (
    _KernelCache,
    cache_stats,
    cached_min_dfa,
    clear_caches,
    hopcroft_refine,
    nfa_includes,
    structural_key,
)
from repro.strings.minimize import (
    minimize_dfa,
    moore_partition,
    moore_partition_reference,
)
from repro.strings.nfa import NFA
from repro.strings.ops import as_min_dfa, as_nfa, equivalent, includes


def random_nfa(rng: random.Random, max_states: int = 8) -> NFA:
    """A small random NFA over {a, b} (sometimes {a, b, c})."""
    num_states = rng.randint(1, max_states)
    states = list(range(num_states))
    alphabet = ["a", "b", "c"][: rng.choice([2, 2, 3])]
    transitions: dict = {}
    for state in states:
        for symbol in alphabet:
            if rng.random() < 0.7:
                targets = {
                    rng.choice(states)
                    for _ in range(rng.randint(1, min(3, num_states)))
                }
                transitions[(state, symbol)] = frozenset(targets)
    initials = {rng.choice(states)}
    finals = {s for s in states if rng.random() < 0.4} or {rng.choice(states)}
    return NFA(states, alphabet, transitions, initials, finals)


def assert_same_dfa(left: DFA, right: DFA) -> None:
    """The kernels preserve the exact frozenset state representation, so
    differential results must be *equal*, not merely isomorphic."""
    assert left.states == right.states
    assert left.transitions == right.transitions
    assert left.initial == right.initial
    assert left.finals == right.finals
    assert left.alphabet == right.alphabet


class TestDeterminizeDifferential:
    def test_randomized_nfas(self):
        rng = random.Random(20260806)
        for case in range(250):
            nfa = random_nfa(rng)
            keep_empty = case % 5 == 0
            fast = determinize(nfa, keep_empty=keep_empty)
            slow = determinize_reference(nfa, keep_empty=keep_empty)
            assert_same_dfa(fast, slow)

    @pytest.mark.parametrize("n", [2, 6, 10])
    def test_blowup_family(self, n):
        nfa = type_automaton(theorem_3_2_family(n).reduced())
        fast = determinize(nfa)
        slow = determinize_reference(nfa)
        assert_same_dfa(fast, slow)
        assert len(fast.states) >= 2**n

    def test_single_state_and_empty_alphabet_edges(self):
        lonely = NFA({0}, set(), {}, {0}, {0})
        assert_same_dfa(determinize(lonely), determinize_reference(lonely))
        dead = NFA({0, 1}, {"a"}, {}, {0}, {1})
        assert_same_dfa(determinize(dead), determinize_reference(dead))


class TestHopcroftDifferential:
    def _random_total_dfa(self, rng: random.Random) -> DFA:
        num_states = rng.randint(1, 9)
        states = list(range(num_states))
        alphabet = ["a", "b"]
        transitions = {
            (state, symbol): rng.choice(states)
            for state in states
            for symbol in alphabet
        }
        finals = {s for s in states if rng.random() < 0.4}
        return DFA(states, alphabet, transitions, 0, finals)

    def test_randomized_boolean_partitions(self):
        rng = random.Random(77)
        for _ in range(250):
            dfa = self._random_total_dfa(rng)
            initial = {state: (state in dfa.finals) for state in dfa.states}
            fast = moore_partition(
                dfa.states, dfa.alphabet, dfa.transitions, initial
            )
            slow = moore_partition_reference(
                dfa.states, dfa.alphabet, dfa.transitions, initial
            )
            assert fast == slow

    def test_randomized_arbitrary_partitions(self):
        # moore_partition also powers single-type EDTD minimization, where
        # the initial partition is by content model, not by finality.
        rng = random.Random(78)
        for _ in range(100):
            dfa = self._random_total_dfa(rng)
            initial = {state: state % 3 for state in dfa.states}
            fast = hopcroft_refine(
                dfa.states, dfa.alphabet, dfa.transitions, initial
            )
            slow = moore_partition_reference(
                dfa.states, dfa.alphabet, dfa.transitions, initial
            )
            assert fast == slow

    def test_blowup_family_minimal_sizes(self):
        from repro.strings.builders import nth_from_end_is

        for n in [2, 4, 6]:
            dfa = determinize(nth_from_end_is("a", "b", n))
            assert len(minimize_dfa(dfa).states) == 2 ** (n + 1)


class TestInclusionKernel:
    def test_differential_on_random_pairs(self):
        rng = random.Random(99)
        for _ in range(200):
            sup, sub = random_nfa(rng), random_nfa(rng)
            fast = nfa_includes(sup, sub)
            slow = (
                determinize_reference(sub)
                .difference(determinize_reference(sup))
                .is_empty_language()
            )
            assert fast == slow

    def test_early_exit_does_not_need_full_product(self):
        # sub accepts everything, sup accepts nothing over a big product
        # space; a counterexample (the empty word here) is found
        # immediately even under a budget far too small for the product.
        from repro.strings.builders import nth_from_end_is, sigma_star

        sup = nth_from_end_is("a", "b", 18)
        sub = sigma_star({"a", "b"}).to_nfa()
        assert not nfa_includes(sup, sub, budget=Budget(max_states=10))

    def test_budget_trips_on_positive_instances(self):
        from repro.strings.builders import nth_from_end_is

        nfa = nth_from_end_is("a", "b", 10)
        with pytest.raises(BudgetExceededError):
            nfa_includes(nfa, nfa, budget=Budget(max_states=20))


class TestCheckpointCompat:
    """Satellite 2: kernel checkpoints keep the frozenset format and are
    interchangeable with the reference implementation."""

    def _nfa(self):
        from repro.strings.builders import nth_from_end_is

        return nth_from_end_is("a", "b", 9)

    def test_kernel_resumes_own_checkpoint(self):
        nfa = self._nfa()
        full = determinize(nfa)
        with pytest.raises(BudgetExceededError) as info:
            determinize(nfa, budget=Budget(max_states=40))
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        resumed = determinize(nfa, checkpoint=checkpoint)
        assert_same_dfa(resumed, full)

    def test_checkpoints_interchangeable_with_reference(self):
        nfa = self._nfa()
        full = determinize_reference(nfa)
        with pytest.raises(BudgetExceededError) as from_reference:
            determinize_reference(nfa, budget=Budget(max_states=40))
        with pytest.raises(BudgetExceededError) as from_kernel:
            determinize(nfa, budget=Budget(max_states=40))
        # Reference checkpoint -> kernel resume, and vice versa.
        assert_same_dfa(
            determinize(nfa, checkpoint=from_reference.value.checkpoint), full
        )
        assert_same_dfa(
            determinize_reference(nfa, checkpoint=from_kernel.value.checkpoint),
            full,
        )

    def test_exhaustion_trips_at_same_state_counts(self):
        nfa = self._nfa()
        for limit in [1, 7, 40, 100]:
            with pytest.raises(BudgetExceededError) as fast:
                determinize(nfa, budget=Budget(max_states=limit))
            with pytest.raises(BudgetExceededError) as slow:
                determinize_reference(nfa, budget=Budget(max_states=limit))
            assert fast.value.reason == slow.value.reason == "max-states"
            assert (
                fast.value.progress.states_explored
                == slow.value.progress.states_explored
                == limit + 1
            )
            assert (
                fast.value.checkpoint.states_explored
                == slow.value.checkpoint.states_explored
            )

    def test_resume_across_multiple_interruptions(self):
        nfa = self._nfa()
        full = determinize(nfa)
        checkpoint = None
        for _ in range(200):
            try:
                resumed = determinize(
                    nfa, budget=Budget(max_states=48), checkpoint=checkpoint
                )
                break
            except BudgetExceededError as error:
                assert error.checkpoint is not None
                checkpoint = error.checkpoint
        else:
            pytest.fail("construction never completed")
        assert_same_dfa(resumed, full)


class TestMemoCache:
    def test_interning_and_counters(self):
        clear_caches()
        first = as_min_dfa("(a | b)*, a")
        before = cache_stats()["min_dfa"]
        second = as_min_dfa("(a | b)*, a")
        after = cache_stats()["min_dfa"]
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_structurally_equal_nfas_share_an_entry(self):
        clear_caches()
        def build():
            return NFA(
                {0, 1}, {"a"}, {(0, "a"): frozenset({0, 1})}, {0}, {1}
            )
        assert structural_key(build()) == structural_key(build())
        assert cached_min_dfa(build()) is cached_min_dfa(build())

    def test_hit_recharges_recorded_cost(self):
        clear_caches()
        def build():
            return as_nfa("(a | b)*, a, (a | b), (a | b)")
        cold = Budget()
        cached_min_dfa(build(), budget=cold)  # miss: real construction
        warm = Budget()
        cached_min_dfa(build(), budget=warm)  # hit: replayed cost
        assert cold.states > 0 and cold.steps > 0
        assert (warm.states, warm.steps) == (cold.states, cold.steps)

    def test_hit_still_trips_tight_budget(self):
        clear_caches()
        def build():
            return as_nfa("(a | b)*, a, (a | b), (a | b)")
        cached_min_dfa(build())  # populate
        with pytest.raises(BudgetExceededError):
            cached_min_dfa(build(), budget=Budget(max_states=2))

    def test_eviction_bound(self):
        cache = _KernelCache("test", max_entries=4)
        for i in range(10):
            cache.store(i, (i, 0, 0))
        assert len(cache.entries) == 4
        assert set(cache.entries) == {6, 7, 8, 9}

    def test_uncacheable_inputs_still_work(self):
        class Odd:
            """Two distinct symbols with the same repr — uncacheable."""
            def __repr__(self):
                return "odd"
        x, y = Odd(), Odd()
        nfa = NFA(
            {0, 1},
            {x, y},
            {(0, x): frozenset({1}), (0, y): frozenset({1})},
            {0},
            {1},
        )
        assert structural_key(nfa) is None
        assert len(cached_min_dfa(nfa).states) == 2


class TestOpsRouting:
    def test_includes_and_equivalent_agree_with_reference_route(self):
        rng = random.Random(123)
        for _ in range(60):
            left, right = random_nfa(rng), random_nfa(rng)
            slow = (
                determinize_reference(right)
                .difference(determinize_reference(left))
                .is_empty_language()
            )
            assert includes(left, right) == slow

    def test_equivalent_unequal_alphabets(self):
        # a* over {a} vs. a* embedded in a larger alphabet: equal languages.
        small = as_min_dfa("a*")
        big = DFA({0}, {"a", "b"}, {(0, "a"): 0}, 0, {0})
        assert equivalent(small, big)
        assert equivalent(big, "a*")
        # Same shape, different symbol: not equal, refuted via the symbol
        # the other side lacks.
        assert not equivalent("a | b", "a | c")
        assert not equivalent("b", "c")
        # Sub uses a symbol sup's alphabet lacks entirely.
        assert not includes("a*", "a*, b")
        assert includes("(a | b)*", big)
        assert not includes(small, big.to_nfa().map_symbols(lambda s: "b"))
