"""Differential harness for the schema-guided subset construction.

The guided kernel (``determinize(..., strategy="schema-guided")``) is
proven equivalent to the blind kernels on three axes:

* **language** — for every generated (automaton, guide) pair,
  ``L(guided) ∩ L(guide) = L(blind) ∩ L(guide)`` (product-automaton
  equivalence, not bounded sampling), and ``L(guided) ⊆ L(blind)``;
* **governance** — identical budget trip counts to the blind loop under
  the universal guide, and checkpoint/resume produces the same artifact
  as an uninterrupted run;
* **metamorphic** — widening the guide never shrinks the explored
  subset set, the universal guide reproduces the blind construction
  state-for-state, and every pruned subset is genuinely unreachable
  under guide-alive ancestor strings (brute-force word oracle).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AutomatonError, BudgetExceededError
from repro.runtime.budget import Budget
from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import SubsetCheckpoint, determinize, determinize_reference
from repro.strings.glushkov import glushkov_nfa
from repro.strings.ops import equivalent, is_empty
from repro.strings.regex import parse
from repro.strings.schema_guided import (
    SchemaGuidedCheckpoint,
    cache_stats,
    cached_guided_subset_construction,
    clear_caches,
    depth_guide,
    guided_subset_construction,
    universal_guide,
)
from tests.strategies import ALPHABET, examples, glushkov_nfas, nfa_guide_pairs

AB = set(ALPHABET)


def _alive_states(guide):
    """The guide's alive set, recomputed independently of the kernel:
    reachable states (all of them, if the guide has no finals) from which
    a final is reachable."""
    reachable = guide.reachable_states()
    if not guide.finals:
        return reachable
    nfa = guide.to_nfa()
    return reachable & nfa.coreachable_states()


def _guide_alive_words(guide, max_len):
    """All words of length <= max_len along which the guide stays alive."""
    alive = _alive_states(guide)
    if guide.initial not in alive:
        return
    frontier = [((), guide.initial)]
    yield ()
    for _ in range(max_len):
        nxt = []
        for word, state in frontier:
            for sym in sorted(guide.alphabet, key=repr):
                target = guide.transitions.get((state, sym))
                if target is None or target not in alive:
                    continue
                extended = word + (sym,)
                yield extended
                nxt.append((extended, target))
        frontier = nxt


# ----------------------------------------------------------------------
# Differential: language equivalence on the guide's universe
# ----------------------------------------------------------------------

@settings(max_examples=examples(200), deadline=None)
@given(nfa_guide_pairs())
def test_guided_equals_blind_on_guide_language(pair):
    nfa, guide = pair
    guided = determinize(nfa, strategy="schema-guided", guide=guide).completed(AB)
    blind = determinize(nfa).completed(AB)
    reference = determinize_reference(nfa).completed(AB)

    # Pruning only ever removes behaviour: L(guided) ⊆ L(blind).
    assert is_empty(guided.difference(blind))

    # On the guide's universe the kernels agree exactly.  A no-finals
    # guide is a prefix machine: its universe is the prefix closure.
    if guide.finals:
        universe = guide.completed(AB)
    else:
        reach = guide.reachable_states()
        universe = guide.__class__(
            guide.states, guide.alphabet, guide.transitions, guide.initial, reach
        ).completed(AB)
    assert equivalent(guided.intersection(universe), blind.intersection(universe))
    assert equivalent(guided.intersection(universe), reference.intersection(universe))


@settings(max_examples=examples(100), deadline=None)
@given(glushkov_nfas())
def test_universal_guide_matches_blind_state_for_state(nfa):
    guided = determinize(nfa, strategy="schema-guided")
    blind = determinize(nfa)
    assert set(guided.states) == set(blind.states)
    assert guided.transitions == blind.transitions
    assert guided.initial == blind.initial
    assert set(guided.finals) == set(blind.finals)


# ----------------------------------------------------------------------
# Metamorphic: widening the guide never shrinks the explored set
# ----------------------------------------------------------------------

@settings(max_examples=examples(60), deadline=None)
@given(glushkov_nfas(), st.integers(min_value=0, max_value=3))
def test_widening_guide_never_shrinks_states(nfa, depth):
    narrow = determinize(nfa, strategy="schema-guided", guide=depth_guide(AB, depth))
    wide = determinize(nfa, strategy="schema-guided", guide=depth_guide(AB, depth + 1))
    blind = determinize(nfa)
    assert set(narrow.states) <= set(wide.states) <= set(blind.states)


@settings(max_examples=examples(100), deadline=None)
@given(nfa_guide_pairs())
def test_pruned_subsets_unreachable_by_guide_alive_words(pair):
    """Reachability oracle: every subset the blind DFA reaches along a
    guide-alive ancestor word must survive the pruning."""
    nfa, guide = pair
    guided = determinize(nfa, strategy="schema-guided", guide=guide)
    blind = determinize(nfa)
    kept = set(guided.states)
    for word in _guide_alive_words(guide, 5):
        state = blind.initial
        for sym in word:
            state = blind.transitions.get((state, sym))
            if state is None:
                break
        else:
            assert state in kept, (word, state)


# ----------------------------------------------------------------------
# Governance: budgets, checkpoints, resume
# ----------------------------------------------------------------------

def _trip_ladder(nfa, *, strategy, guide=None, start=2):
    """Run to completion under a growing max_states ladder; return the
    (trip count, checkpoint types seen, final DFA)."""
    trips = 0
    seen: list[type] = []
    checkpoint = None
    limit = start
    while True:
        try:
            dfa = determinize(
                nfa,
                budget=Budget(max_states=limit),
                checkpoint=checkpoint,
                strategy=strategy,
                guide=guide,
            )
            return trips, seen, dfa
        except BudgetExceededError as error:
            trips += 1
            assert error.checkpoint is not None
            seen.append(type(error.checkpoint))
            checkpoint = error.checkpoint
            limit += 2
            assert trips < 100


def test_budget_trip_counts_match_blind_contract():
    nfa = nth_from_end_is("a", "b", 5)
    blind_trips, blind_types, blind_dfa = _trip_ladder(nfa, strategy="blind")
    guided_trips, guided_types, guided_dfa = _trip_ladder(nfa, strategy="schema-guided")
    assert guided_trips == blind_trips > 0
    assert all(t is SubsetCheckpoint for t in blind_types)
    assert all(t is SchemaGuidedCheckpoint for t in guided_types)
    assert set(guided_dfa.states) == set(blind_dfa.states)
    assert guided_dfa.transitions == blind_dfa.transitions


def test_checkpoint_resume_equals_uninterrupted():
    nfa = nth_from_end_is("a", "b", 5)
    guide = depth_guide(AB, 4)
    whole = determinize(nfa, strategy="schema-guided", guide=guide)
    trips, types, resumed = _trip_ladder(nfa, strategy="schema-guided", guide=guide)
    assert trips > 0 and all(t is SchemaGuidedCheckpoint for t in types)
    assert set(resumed.states) == set(whole.states)
    assert resumed.transitions == whole.transitions
    assert set(resumed.finals) == set(whole.finals)
    assert resumed.initial == whole.initial


def test_checkpoint_contract_mirrors_blind():
    nfa = nth_from_end_is("a", "b", 5)
    try:
        determinize(nfa, strategy="schema-guided", budget=Budget(max_states=4))
    except BudgetExceededError as error:
        checkpoint = error.checkpoint
    else:  # pragma: no cover - the family always trips at 4 states
        pytest.fail("expected a budget trip")
    assert isinstance(checkpoint, SchemaGuidedCheckpoint)
    # Same observable surface as SubsetCheckpoint.
    assert checkpoint.states_explored >= 4
    assert checkpoint.frontier_size >= 0
    assert len(checkpoint.states) == checkpoint.states_explored


def test_strategy_validation():
    nfa = glushkov_nfa(parse("a b*"))
    with pytest.raises(AutomatonError):
        determinize(nfa, strategy="unknown")
    with pytest.raises(AutomatonError):
        determinize(nfa, strategy="blind", guide=universal_guide(AB))
    with pytest.raises(BudgetExceededError) as trip:
        determinize(nfa, strategy="schema-guided", budget=Budget(max_states=1))
    with pytest.raises(AutomatonError):
        determinize(nfa, strategy="blind", checkpoint=trip.value.checkpoint)


# ----------------------------------------------------------------------
# Memo cache: hits return the identical artifact
# ----------------------------------------------------------------------

def test_memo_cache_hit_returns_identical_artifact():
    clear_caches()
    nfa = nth_from_end_is("a", "b", 4)
    guide = depth_guide(AB, 3)
    first = cached_guided_subset_construction(nfa, guide)
    second = cached_guided_subset_construction(nfa, guide)
    assert second is first
    stats = cache_stats()["schema_guided_det"]
    assert stats["hits"] >= 1

    # A different guide must not collide with the cached entry.
    other = cached_guided_subset_construction(nfa, depth_guide(AB, 2))
    assert set(other.states) != set(first.states)

    # And the uncached kernel agrees with the cached artifact.
    direct = guided_subset_construction(nfa, guide)
    assert set(direct.states) == set(first.states)
    assert direct.transitions == first.transitions
