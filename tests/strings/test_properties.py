"""Property-based tests (hypothesis) for the string substrate.

Random regular expressions are generated over a two-letter alphabet and the
pipeline Glushkov -> determinize -> minimize is cross-checked against direct
AST semantics and against brute-force word enumeration.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.strings.determinize import determinize
from repro.strings.glushkov import glushkov_nfa
from repro.strings.minimize import minimize_dfa
from repro.strings.ops import count_words_by_length, enumerate_words, equivalent, includes
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
)

ALPHABET = ["a", "b"]


def regexes(max_depth: int = 4) -> st.SearchStrategy[Regex]:
    atoms = st.sampled_from(
        [Sym("a"), Sym("b"), EPSILON, EMPTY]
    )
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
            st.builds(Star, inner),
            st.builds(Plus, inner),
            st.builds(Opt, inner),
        ),
        max_leaves=8,
    )


def words_up_to(n: int):
    out = [()]
    frontier = [()]
    for _ in range(n):
        frontier = [w + (c,) for w in frontier for c in ALPHABET]
        out.extend(frontier)
    return out


ALL_WORDS_4 = words_up_to(4)


def ast_matches(expr: Regex, word: tuple) -> bool:
    """Brute-force membership via the AST (exponential, for tiny words)."""
    if isinstance(expr, Sym):
        return word == (expr.symbol,)
    if expr == EPSILON:
        return word == ()
    if expr == EMPTY:
        return False
    if isinstance(expr, Union):
        return ast_matches(expr.left, word) or ast_matches(expr.right, word)
    if isinstance(expr, Concat):
        return any(
            ast_matches(expr.left, word[:i]) and ast_matches(expr.right, word[i:])
            for i in range(len(word) + 1)
        )
    if isinstance(expr, Opt):
        return word == () or ast_matches(expr.child, word)
    if isinstance(expr, (Star, Plus)):
        if word == ():
            return isinstance(expr, Star) or expr.nullable()
        return any(
            i > 0
            and ast_matches(expr.child, word[:i])
            and ast_matches(Star(expr.child), word[i:])
            for i in range(1, len(word) + 1)
        )
    raise TypeError(expr)


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_glushkov_agrees_with_ast_semantics(expr):
    nfa = glushkov_nfa(expr)
    for word in ALL_WORDS_4:
        assert nfa.accepts(word) == ast_matches(expr, word), (expr, word)


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_determinize_minimize_preserve_language(expr):
    nfa = glushkov_nfa(expr)
    dfa = determinize(nfa)
    minimal = minimize_dfa(dfa)
    for word in ALL_WORDS_4:
        accepted = nfa.accepts(word)
        assert dfa.accepts(word) == accepted
        assert minimal.accepts(word) == accepted


@settings(max_examples=40, deadline=None)
@given(regexes(), regexes())
def test_product_operations_semantics(left, right):
    ldfa = minimize_dfa(determinize(glushkov_nfa(left))).completed(ALPHABET)
    rdfa = minimize_dfa(determinize(glushkov_nfa(right))).completed(ALPHABET)
    inter = ldfa.intersection(rdfa)
    union_ = ldfa.union(rdfa)
    diff = ldfa.difference(rdfa)
    for word in ALL_WORDS_4:
        in_l, in_r = ldfa.accepts(word), rdfa.accepts(word)
        assert inter.accepts(word) == (in_l and in_r)
        assert union_.accepts(word) == (in_l or in_r)
        assert diff.accepts(word) == (in_l and not in_r)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_complement_involution(expr):
    dfa = minimize_dfa(determinize(glushkov_nfa(expr))).completed(ALPHABET)
    assert equivalent(dfa.complement().complement(), dfa)


@settings(max_examples=40, deadline=None)
@given(regexes())
def test_nullable_agrees_with_acceptance(expr):
    assert glushkov_nfa(expr).accepts(()) == expr.nullable()


@settings(max_examples=30, deadline=None)
@given(regexes())
def test_counting_matches_enumeration(expr):
    counts = count_words_by_length(expr, 4)
    by_len = [0] * 5
    for word in enumerate_words(expr, 4):
        by_len[len(word)] += 1
    assert counts == by_len


@settings(max_examples=30, deadline=None)
@given(regexes())
def test_inclusion_reflexive_and_star_superset(expr):
    assert includes(expr, expr)
    assert includes("(a | b)*", expr)
