"""Property-based tests (hypothesis) for the string substrate.

Random regular expressions are generated over a two-letter alphabet and the
pipeline Glushkov -> determinize -> minimize is cross-checked against direct
AST semantics and against brute-force word enumeration.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.strings.determinize import determinize
from repro.strings.glushkov import glushkov_nfa
from repro.strings.minimize import minimize_dfa
from repro.strings.ops import count_words_by_length, enumerate_words, equivalent, includes
from tests.strategies import ALL_WORDS_4, ALPHABET, ast_matches, examples, regexes


@settings(max_examples=examples(60), deadline=None)
@given(regexes())
def test_glushkov_agrees_with_ast_semantics(expr):
    nfa = glushkov_nfa(expr)
    for word in ALL_WORDS_4:
        assert nfa.accepts(word) == ast_matches(expr, word), (expr, word)


@settings(max_examples=60, deadline=None)
@given(regexes())
def test_determinize_minimize_preserve_language(expr):
    nfa = glushkov_nfa(expr)
    dfa = determinize(nfa)
    minimal = minimize_dfa(dfa)
    for word in ALL_WORDS_4:
        accepted = nfa.accepts(word)
        assert dfa.accepts(word) == accepted
        assert minimal.accepts(word) == accepted


@settings(max_examples=examples(40), deadline=None)
@given(regexes(), regexes())
def test_product_operations_semantics(left, right):
    ldfa = minimize_dfa(determinize(glushkov_nfa(left))).completed(ALPHABET)
    rdfa = minimize_dfa(determinize(glushkov_nfa(right))).completed(ALPHABET)
    inter = ldfa.intersection(rdfa)
    union_ = ldfa.union(rdfa)
    diff = ldfa.difference(rdfa)
    for word in ALL_WORDS_4:
        in_l, in_r = ldfa.accepts(word), rdfa.accepts(word)
        assert inter.accepts(word) == (in_l and in_r)
        assert union_.accepts(word) == (in_l or in_r)
        assert diff.accepts(word) == (in_l and not in_r)


@settings(max_examples=examples(40), deadline=None)
@given(regexes())
def test_complement_involution(expr):
    dfa = minimize_dfa(determinize(glushkov_nfa(expr))).completed(ALPHABET)
    assert equivalent(dfa.complement().complement(), dfa)


@settings(max_examples=examples(40), deadline=None)
@given(regexes())
def test_nullable_agrees_with_acceptance(expr):
    assert glushkov_nfa(expr).accepts(()) == expr.nullable()


@settings(max_examples=examples(30), deadline=None)
@given(regexes())
def test_counting_matches_enumeration(expr):
    counts = count_words_by_length(expr, 4)
    by_len = [0] * 5
    for word in enumerate_words(expr, 4):
        by_len[len(word)] += 1
    assert counts == by_len


@settings(max_examples=examples(30), deadline=None)
@given(regexes())
def test_inclusion_reflexive_and_star_superset(expr):
    assert includes(expr, expr)
    assert includes("(a | b)*", expr)
