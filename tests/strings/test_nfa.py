"""Unit tests for repro.strings.nfa."""

from __future__ import annotations

import pytest

from repro.errors import AutomatonError
from repro.strings.nfa import NFA
from repro.strings.ops import equivalent


def simple_nfa() -> NFA:
    """Accepts a(a|b)* — states: 0 -a-> 1, 1 loops on a,b."""
    return NFA(
        states={0, 1},
        alphabet={"a", "b"},
        transitions={(0, "a"): {1}, (1, "a"): {1}, (1, "b"): {1}},
        initials={0},
        finals={1},
    )


class TestConstruction:
    def test_basic_fields(self):
        nfa = simple_nfa()
        assert nfa.states == {0, 1}
        assert nfa.alphabet == {"a", "b"}
        assert nfa.initials == {0}
        assert nfa.finals == {1}

    def test_empty_target_sets_are_dropped(self):
        nfa = NFA({0}, {"a"}, {(0, "a"): set()}, {0}, {0})
        assert not nfa.transitions

    def test_unknown_initial_rejected(self):
        with pytest.raises(AutomatonError):
            NFA({0}, {"a"}, {}, {1}, set())

    def test_unknown_final_rejected(self):
        with pytest.raises(AutomatonError):
            NFA({0}, {"a"}, {}, {0}, {1})

    def test_unknown_transition_source_rejected(self):
        with pytest.raises(AutomatonError):
            NFA({0}, {"a"}, {(1, "a"): {0}}, {0}, set())

    def test_unknown_symbol_rejected(self):
        with pytest.raises(AutomatonError):
            NFA({0}, {"a"}, {(0, "b"): {0}}, {0}, set())

    def test_unknown_target_rejected(self):
        with pytest.raises(AutomatonError):
            NFA({0}, {"a"}, {(0, "a"): {7}}, {0}, set())


class TestRuns:
    def test_accepts_member(self):
        assert simple_nfa().accepts("aab")

    def test_rejects_nonmember(self):
        assert not simple_nfa().accepts("ba")

    def test_rejects_empty(self):
        assert not simple_nfa().accepts("")

    def test_read_returns_state_set(self):
        assert simple_nfa().read("a") == {1}

    def test_read_dead_run_is_empty(self):
        assert simple_nfa().read("b") == frozenset()

    def test_step_unions_successors(self):
        nfa = NFA({0, 1, 2}, {"a"}, {(0, "a"): {1}, (1, "a"): {2}}, {0}, {2})
        assert nfa.step(frozenset({0, 1}), "a") == {1, 2}

    def test_size_counts_states_and_edges(self):
        assert simple_nfa().size() == 2 + 3

    def test_num_transitions(self):
        assert simple_nfa().num_transitions() == 3


class TestStateLabeled:
    def test_simple_nfa_is_state_labeled(self):
        # state 1 is entered on both a and b -> not state-labeled
        assert not simple_nfa().is_state_labeled()

    def test_state_labeled_conversion_preserves_language(self):
        converted = simple_nfa().state_labeled()
        assert converted.is_state_labeled()
        assert equivalent(converted, simple_nfa())

    def test_label_of_unique(self):
        nfa = NFA({0, 1}, {"a"}, {(0, "a"): {1}}, {0}, {1})
        assert nfa.label_of(1) == "a"

    def test_label_of_no_incoming_raises(self):
        nfa = NFA({0, 1}, {"a"}, {(0, "a"): {1}}, {0}, {1})
        with pytest.raises(AutomatonError):
            nfa.label_of(0)

    def test_incoming_labels(self):
        assert simple_nfa().incoming_labels(1) == {"a", "b"}


class TestReachability:
    def test_reachable_states(self):
        nfa = NFA({0, 1, 2}, {"a"}, {(0, "a"): {1}}, {0}, {1})
        assert nfa.reachable_states() == {0, 1}

    def test_coreachable_states(self):
        nfa = NFA({0, 1, 2}, {"a"}, {(0, "a"): {1}, (2, "a"): {2}}, {0}, {1})
        assert nfa.coreachable_states() == {0, 1}

    def test_trim_preserves_language(self):
        nfa = NFA(
            {0, 1, 2, 3},
            {"a"},
            {(0, "a"): {1, 2}, (2, "a"): {2}},
            {0},
            {1},
        )
        trimmed = nfa.trim()
        assert trimmed.states == {0, 1}
        assert equivalent(trimmed, nfa)

    def test_empty_language_detection(self):
        nfa = NFA({0, 1}, {"a"}, {(0, "a"): {0}}, {0}, {1})
        assert nfa.is_empty_language()

    def test_nonempty_language_detection(self):
        assert not simple_nfa().is_empty_language()


class TestCombinators:
    def test_union(self):
        assert equivalent(simple_nfa().union(simple_nfa()), simple_nfa())

    def test_concat(self):
        from repro.strings.ops import as_nfa

        result = as_nfa("a").concat(as_nfa("b"))
        assert result.accepts("ab")
        assert not result.accepts("a")
        assert not result.accepts("ba")

    def test_concat_with_nullable_right(self):
        from repro.strings.ops import as_nfa

        result = as_nfa("a").concat(as_nfa("b?"))
        assert result.accepts("a")
        assert result.accepts("ab")

    def test_concat_with_nullable_left(self):
        from repro.strings.ops import as_nfa

        result = as_nfa("a?").concat(as_nfa("b"))
        assert result.accepts("b")
        assert result.accepts("ab")
        assert not result.accepts("")

    def test_star_accepts_empty(self):
        from repro.strings.ops import as_nfa

        assert as_nfa("a").star().accepts("")

    def test_star_accepts_repetitions(self):
        from repro.strings.ops import as_nfa

        star = as_nfa("a, b").star()
        assert star.accepts("abab")
        assert not star.accepts("aba")

    def test_plus_rejects_empty(self):
        from repro.strings.ops import as_nfa

        plus = as_nfa("a").plus()
        assert not plus.accepts("")
        assert plus.accepts("aaa")

    def test_optional(self):
        from repro.strings.ops import as_nfa

        opt = as_nfa("a, b").optional()
        assert opt.accepts("")
        assert opt.accepts("ab")
        assert not opt.accepts("a")

    def test_reverse(self):
        from repro.strings.ops import as_nfa

        assert equivalent(as_nfa("a, b, c").reverse(), "c, b, a")

    def test_map_symbols(self):
        mapped = simple_nfa().map_symbols(lambda s: s.upper())
        assert mapped.accepts(["A", "B"])
        assert mapped.alphabet == {"A", "B"}

    def test_map_symbols_can_merge(self):
        from repro.strings.ops import as_nfa

        merged = as_nfa("a | b").map_symbols(lambda _: "x")
        assert merged.accepts("x")
        assert not merged.accepts("xx")

    def test_relabel_preserves_language(self):
        relabeled = simple_nfa().relabel()
        assert equivalent(relabeled, simple_nfa())
        assert all(isinstance(s, str) for s in relabeled.states)

    def test_with_alphabet_extends(self):
        extended = simple_nfa().with_alphabet({"c"})
        assert "c" in extended.alphabet
        assert equivalent(extended, simple_nfa())
