"""Tests for language-level operations (coercions, decisions, enumeration)."""

from __future__ import annotations

import random

import pytest

from repro.errors import AutomatonError
from repro.strings.dfa import DFA
from repro.strings.nfa import NFA
from repro.strings.ops import (
    as_dfa,
    as_min_dfa,
    as_nfa,
    count_words_by_length,
    enumerate_words,
    equivalent,
    includes,
    is_empty,
    is_universal,
    sample_word,
    shortest_word,
    symbols_of,
)
from repro.strings.regex import parse


class TestCoercions:
    def test_string_to_nfa(self):
        assert as_nfa("a, b").accepts("ab")

    def test_regex_to_nfa(self):
        assert as_nfa(parse("a | b")).accepts("b")

    def test_dfa_passthrough(self):
        dfa = as_min_dfa("a")
        assert as_dfa(dfa) is dfa

    def test_nfa_passthrough(self):
        nfa = as_nfa("a")
        assert as_nfa(nfa) is nfa

    def test_min_dfa_is_minimal(self):
        dfa = as_min_dfa("a | a, a | a, a, a")
        assert len(dfa.states) == 4  # chain of three a's with three accepts

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_nfa(42)

    def test_symbols_of(self):
        assert symbols_of("a, (b | c)") == {"a", "b", "c"}
        assert symbols_of(as_min_dfa("a, b")) == {"a", "b"}


class TestDecisions:
    def test_is_empty(self):
        assert is_empty("#")
        assert is_empty("a, #")
        assert not is_empty("a?")

    def test_is_universal(self):
        assert is_universal("(a | b)*", {"a", "b"})
        assert not is_universal("(a | b)+", {"a", "b"})
        assert is_universal("a*", {"a"})

    def test_is_universal_smaller_alphabet(self):
        # (a|b)* restricted to {a} is still universal over {a}.
        assert is_universal("(a | b)*", {"a"})

    def test_includes(self):
        assert includes("(a | b)*", "a, b")
        assert not includes("a, b", "(a | b)*")
        assert includes("a*", "#")

    def test_equivalent(self):
        assert equivalent("(a | b)*", "(b | a)*")
        assert not equivalent("a*", "a+")

    def test_equivalent_unequal_alphabets(self):
        # The on-the-fly product only walks the sub-side's symbols, so
        # languages that merely *mention* different alphabets but agree on
        # their words compare equal ...
        from repro.strings.dfa import DFA

        padded = DFA({0}, {"a", "b"}, {(0, "a"): 0}, 0, {0})  # a* over {a,b}
        assert equivalent("a*", padded)
        assert equivalent(padded, "a*")
        # ... while a word over a symbol the other side lacks is found as
        # an early counterexample.
        assert not equivalent("a | b", "a | c")
        assert not equivalent(padded, "(a | b)*")
        assert not equivalent("#", "b")


class TestEnumeration:
    def test_shortlex_order(self):
        words = list(enumerate_words("(a | b)*", 2))
        assert words == [
            (),
            ("a",),
            ("b",),
            ("a", "a"),
            ("a", "b"),
            ("b", "a"),
            ("b", "b"),
        ]

    def test_enumeration_respects_membership(self):
        dfa = as_min_dfa("a, (b, a)*")
        for word in enumerate_words(dfa, 7):
            assert dfa.accepts(word)

    def test_counts_match_enumeration(self):
        source = "(a | b, b)*"
        counts = count_words_by_length(source, 6)
        by_len = [0] * 7
        for word in enumerate_words(source, 6):
            by_len[len(word)] += 1
        assert counts == by_len

    def test_counts_of_universal(self):
        assert count_words_by_length("(a | b)*", 4) == [1, 2, 4, 8, 16]

    def test_shortest_word(self):
        assert shortest_word("a, a | b") == ("b",)
        assert shortest_word("#") is None
        assert shortest_word("~") == ()


class TestSampling:
    def test_sampled_words_are_members(self):
        rng = random.Random(7)
        dfa = as_min_dfa("a, (b | c)*, a")
        for length in [2, 3, 5, 8]:
            word = sample_word(dfa, length, rng)
            assert len(word) == length
            assert dfa.accepts(word)

    def test_sampling_impossible_length_raises(self):
        rng = random.Random(7)
        with pytest.raises(AutomatonError):
            sample_word("a, a", 3, rng)

    def test_sampling_is_seed_deterministic(self):
        dfa = as_min_dfa("(a | b)*")
        w1 = sample_word(dfa, 6, random.Random(42))
        w2 = sample_word(dfa, 6, random.Random(42))
        assert w1 == w2

    def test_sampling_roughly_uniform(self):
        # Over (a|b)* at length 2 there are 4 words; with 400 draws each
        # should appear a decent number of times.
        rng = random.Random(3)
        seen: dict = {}
        for _ in range(400):
            word = sample_word("(a | b)*", 2, rng)
            seen[word] = seen.get(word, 0) + 1
        assert len(seen) == 4
        assert min(seen.values()) > 50
