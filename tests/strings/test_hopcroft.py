"""Tests for Hopcroft minimization, incl. differential testing against the
Moore-refinement route."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.glushkov import glushkov_nfa
from repro.strings.hopcroft import hopcroft_minimize
from repro.strings.minimize import minimize_dfa
from repro.strings.ops import as_min_dfa, equivalent
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Star,
    Sym,
    Union,
    parse,
)


class TestHopcroft:
    @pytest.mark.parametrize(
        "source",
        ["a", "~", "#", "a, b", "(a | b)*, a", "a+, b?", "(a, b | b, a)+",
         "a, (b | c)*, a", "(a | b)*, a, (a | b)"],
    )
    def test_agrees_with_moore_route(self, source):
        dfa = determinize(glushkov_nfa(parse(source)))
        via_hopcroft = hopcroft_minimize(dfa)
        via_moore = minimize_dfa(dfa)
        assert len(via_hopcroft.states) == len(via_moore.states), source
        assert equivalent(via_hopcroft, via_moore), source

    def test_empty_language(self):
        dfa = DFA({0}, {"a"}, {}, 0, set())
        assert hopcroft_minimize(dfa).is_empty_language()

    def test_complete_flag(self):
        trim = hopcroft_minimize(as_min_dfa("a"))
        complete = hopcroft_minimize(as_min_dfa("a"), complete=True)
        assert complete.is_complete()
        assert len(complete.states) == len(trim.states) + 1

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_blowup_family_minimal_sizes(self, n):
        dfa = determinize(nth_from_end_is("a", "b", n))
        minimal = hopcroft_minimize(dfa)
        assert len(minimal.states) == 2 ** (n + 1)

    def test_redundant_states_merged(self):
        dfa = DFA(
            {0, 1, 2, 3},
            {"a"},
            {(0, "a"): 1, (1, "a"): 2, (2, "a"): 3, (3, "a"): 0},
            0,
            {0, 2},
        )
        # Language: even number of a's -> 2 states.
        assert len(hopcroft_minimize(dfa).states) == 2

    def test_random_dfas_differential(self):
        rng = random.Random(9)
        for _ in range(30):
            num_states = rng.randint(2, 8)
            states = list(range(num_states))
            transitions = {}
            for state in states:
                for symbol in "ab":
                    if rng.random() < 0.85:
                        transitions[(state, symbol)] = rng.choice(states)
            finals = {s for s in states if rng.random() < 0.4}
            dfa = DFA(states, {"a", "b"}, transitions, 0, finals)
            via_hopcroft = hopcroft_minimize(dfa)
            via_moore = minimize_dfa(dfa)
            assert len(via_hopcroft.states) == len(via_moore.states)
            assert equivalent(via_hopcroft, via_moore)


def regexes():
    atoms = st.sampled_from([Sym("a"), Sym("b"), EPSILON, EMPTY])
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
            st.builds(Star, inner),
            st.builds(Plus, inner),
            st.builds(Opt, inner),
        ),
        max_leaves=8,
    )


@settings(max_examples=50, deadline=None)
@given(regexes())
def test_differential_minimization(expr):
    dfa = determinize(glushkov_nfa(expr))
    via_hopcroft = hopcroft_minimize(dfa)
    via_moore = minimize_dfa(dfa)
    assert len(via_hopcroft.states) == len(via_moore.states), expr
    assert equivalent(via_hopcroft, via_moore), expr
