"""Tests for the concrete language builders."""

from __future__ import annotations

import pytest

from repro.strings.builders import (
    at_most_k_occurrences,
    contains_symbol_from,
    empty_language,
    epsilon_language,
    exactly_length,
    finite_language,
    nth_from_end_is,
    sigma_plus,
    sigma_star,
    unary_exactly,
    word_language,
)
from repro.strings.ops import count_words_by_length, enumerate_words, equivalent


class TestBasicBuilders:
    def test_empty_language(self):
        assert empty_language({"a"}).is_empty_language()

    def test_epsilon_language(self):
        dfa = epsilon_language({"a"})
        assert dfa.accepts("")
        assert not dfa.accepts("a")

    def test_word_language(self):
        dfa = word_language("abc")
        assert dfa.accepts("abc")
        assert not dfa.accepts("ab")
        assert not dfa.accepts("abcc")

    def test_finite_language(self):
        dfa = finite_language(["ab", "a", ""])
        assert sorted(enumerate_words(dfa, 3)) == [(), ("a",), ("a", "b")]

    def test_finite_language_prefix_sharing(self):
        dfa = finite_language(["aa", "ab"])
        assert dfa.accepts("aa")
        assert dfa.accepts("ab")
        assert not dfa.accepts("a")

    def test_sigma_star(self):
        assert equivalent(sigma_star({"a", "b"}), "(a | b)*")

    def test_sigma_plus(self):
        assert equivalent(sigma_plus({"a", "b"}), "(a | b)+")

    def test_unary_exactly(self):
        dfa = unary_exactly("a", 3)
        assert dfa.accepts("aaa")
        assert not dfa.accepts("aa")


class TestCountingBuilders:
    def test_contains_symbol_from(self):
        dfa = contains_symbol_from({"a", "b", "c"}, {"b", "c"})
        assert dfa.accepts("ab")
        assert dfa.accepts("c")
        assert not dfa.accepts("aaa")
        assert not dfa.accepts("")

    @pytest.mark.parametrize("k", [0, 1, 3])
    def test_at_most_k_occurrences(self, k):
        dfa = at_most_k_occurrences({"a", "b"}, "a", k)
        assert dfa.accepts("a" * k)
        assert not dfa.accepts("a" * (k + 1))
        assert dfa.accepts("b" * 5 + "a" * k)
        assert not dfa.accepts("b".join("a" * (k + 1)))

    def test_exactly_length(self):
        dfa = exactly_length({"a", "b"}, 2)
        assert count_words_by_length(dfa, 3) == [0, 0, 4, 0]


class TestBlowupFamily:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_membership(self, n):
        nfa = nth_from_end_is("a", "b", n)
        assert nfa.accepts("a" + "b" * n)
        assert nfa.accepts("bba" + "a" * n)
        assert not nfa.accepts("b" + "a" * (n - 1) + "b") if n > 1 else True
        assert not nfa.accepts("b" * (n + 1))
        assert not nfa.accepts("a" * n)  # too short

    def test_linear_size(self):
        assert len(nth_from_end_is("a", "b", 10).states) == 12
