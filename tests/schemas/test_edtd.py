"""Unit tests for EDTDs (Definition 2.2, Proviso 2.3)."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.trees.generate import enumerate_trees
from repro.trees.tree import parse_tree


def two_root_edtd() -> EDTD:
    """Root a is either all-b-children or exactly-two-b-children typed."""
    return EDTD(
        alphabet={"a", "b"},
        types={"r1", "r2", "x", "y"},
        rules={"r1": "x*", "r2": "y, y", "x": "~", "y": "~"},
        starts={"r1", "r2"},
        mu={"r1": "a", "r2": "a", "x": "b", "y": "b"},
    )


class TestConstruction:
    def test_mu_must_be_total(self):
        with pytest.raises(SchemaError):
            EDTD(
                alphabet={"a"},
                types={"t", "u"},
                rules={},
                starts={"t"},
                mu={"t": "a"},
            )

    def test_mu_into_alphabet(self):
        with pytest.raises(SchemaError):
            EDTD(alphabet={"a"}, types={"t"}, rules={}, starts={"t"}, mu={"t": "z"})

    def test_starts_must_be_types(self):
        with pytest.raises(SchemaError):
            EDTD(alphabet={"a"}, types={"t"}, rules={}, starts={"z"}, mu={"t": "a"})

    def test_rules_over_unknown_types_rejected(self):
        with pytest.raises(SchemaError):
            EDTD(
                alphabet={"a"},
                types={"t"},
                rules={"t": "zz"},
                starts={"t"},
                mu={"t": "a"},
            )

    def test_rules_for_unknown_types_rejected(self):
        with pytest.raises(SchemaError):
            EDTD(
                alphabet={"a"},
                types={"t"},
                rules={"u": "~"},
                starts={"t"},
                mu={"t": "a"},
            )


class TestMembership:
    def test_accepts_either_typing(self):
        edtd = two_root_edtd()
        assert edtd.accepts(parse_tree("a"))         # r1 with zero x's
        assert edtd.accepts(parse_tree("a(b, b)"))   # both typings
        assert edtd.accepts(parse_tree("a(b, b, b)"))

    def test_rejects_wrong_label(self):
        assert not two_root_edtd().accepts(parse_tree("b"))

    def test_rejects_foreign_label(self):
        assert not two_root_edtd().accepts(parse_tree("a(c)"))

    def test_possible_types(self):
        edtd = two_root_edtd()
        assert edtd.possible_types(parse_tree("a(b, b)")) == {"r1", "r2"}
        assert edtd.possible_types(parse_tree("a(b)")) == {"r1"}
        assert edtd.possible_types(parse_tree("b")) == {"x", "y"}

    def test_typed_witness_valid(self):
        edtd = two_root_edtd()
        witness = edtd.typed_witness(parse_tree("a(b, b)"))
        assert witness is not None
        assert witness.label in {"r1", "r2"}
        assert witness.map_labels(lambda t: edtd.mu[t]) == parse_tree("a(b, b)")

    def test_typed_witness_none_for_nonmember(self):
        assert two_root_edtd().typed_witness(parse_tree("b(a)")) is None

    def test_deep_nesting(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t?"},
            starts={"t"},
            mu={"t": "a"},
        )
        tree = parse_tree("a(a(a(a)))")
        assert edtd.accepts(tree)
        assert not edtd.accepts(parse_tree("a(a, a)"))


class TestReduction:
    def test_unproductive_removed(self):
        edtd = EDTD(
            alphabet={"a", "b"},
            types={"r", "dead"},
            rules={"r": "dead | ~", "dead": "dead"},
            starts={"r"},
            mu={"r": "a", "dead": "b"},
        )
        reduced = edtd.reduced()
        assert reduced.types == {"r"}
        assert reduced.accepts(parse_tree("a"))
        assert not reduced.accepts(parse_tree("a(b)"))

    def test_unreachable_removed(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"r", "island"},
            rules={"r": "~", "island": "~"},
            starts={"r"},
            mu={"r": "a", "island": "a"},
        )
        assert edtd.reduced().types == {"r"}

    def test_reduction_preserves_language(self, ab_universe_4):
        edtd = EDTD(
            alphabet={"a", "b"},
            types={"r", "x", "dead"},
            rules={"r": "x* | dead", "x": "~", "dead": "dead"},
            starts={"r"},
            mu={"r": "a", "x": "b", "dead": "b"},
        )
        reduced = edtd.reduced()
        for tree in ab_universe_4:
            assert edtd.accepts(tree) == reduced.accepts(tree), tree

    def test_is_reduced(self):
        assert two_root_edtd().is_reduced()

    def test_empty_language(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"loop"},
            rules={"loop": "loop"},
            starts={"loop"},
            mu={"loop": "a"},
        )
        assert edtd.is_empty_language()
        assert edtd.reduced().types == set()

    def test_reduction_idempotent(self):
        reduced = two_root_edtd().reduced()
        assert reduced.reduced().types == reduced.types


class TestStructure:
    def test_occurring_types(self):
        edtd = two_root_edtd()
        assert edtd.occurring_types("r1") == {"x"}
        assert edtd.occurring_types("r2") == {"y"}
        assert edtd.occurring_types("x") == set()

    def test_occurring_excludes_useless_symbols(self):
        # d(t) = u, # -- u never occurs in a word.
        edtd = EDTD(
            alphabet={"a"},
            types={"t", "u"},
            rules={"t": "u, #", "u": "~"},
            starts={"t"},
            mu={"t": "a", "u": "a"},
        )
        assert edtd.occurring_types("t") == set()

    def test_content_over_sigma(self):
        edtd = two_root_edtd()
        sigma_content = edtd.content_over_sigma("r2")
        assert sigma_content.accepts(["b", "b"])
        assert not sigma_content.accepts(["b"])

    def test_start_symbols(self):
        assert two_root_edtd().start_symbols() == {"a"}

    def test_sizes(self):
        edtd = two_root_edtd()
        assert edtd.type_size() == 4
        assert edtd.size() > edtd.type_size()

    def test_relabel_types_preserves_language(self, ab_universe_4):
        edtd = two_root_edtd()
        relabeled = edtd.relabel_types()
        for tree in ab_universe_4:
            assert edtd.accepts(tree) == relabeled.accepts(tree), tree

    def test_enumeration_agrees_with_membership(self, ab_universe_4):
        edtd = two_root_edtd()
        enumerated = set(enumerate_trees(edtd, 4))
        expected = {t for t in ab_universe_4 if edtd.accepts(t)}
        assert enumerated == expected
