"""Tests for single-type EDTD minimization ([20])."""

from __future__ import annotations

import random

import pytest

from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.minimize import canonical_dfa_key, minimize_single_type, type_minimal_size
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.ops import as_min_dfa


class TestCanonicalKey:
    def test_equal_languages_equal_keys(self):
        k1 = canonical_dfa_key(as_min_dfa("a | b, a"), {"a", "b"})
        k2 = canonical_dfa_key(as_min_dfa("b?, a"), {"a", "b"})
        assert k1 == k2

    def test_different_languages_different_keys(self):
        k1 = canonical_dfa_key(as_min_dfa("a"), {"a"})
        k2 = canonical_dfa_key(as_min_dfa("a?"), {"a"})
        assert k1 != k2

    def test_alphabet_matters(self):
        k1 = canonical_dfa_key(as_min_dfa("a"), {"a"})
        k2 = canonical_dfa_key(as_min_dfa("a"), {"a", "b"})
        assert k1 != k2


class TestMinimization:
    def test_collapses_duplicate_types(self):
        # x1 and x2 are indistinguishable (same label, same content, same
        # continuations) and should merge.
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x1", "x2", "y"},
            rules={"r": "x1", "x1": "x2?", "x2": "x1?", "y": "~"},
            starts={"r"},
            mu={"r": "b", "x1": "a", "x2": "a", "y": "b"},
        )
        minimal = minimize_single_type(schema)
        assert len(minimal.types) == 2  # root + one recursive a-type
        assert single_type_equivalent(minimal, schema)

    def test_already_minimal_is_stable(self, store_schema):
        minimal = minimize_single_type(store_schema)
        assert len(minimal.types) == 3
        assert single_type_equivalent(minimal, store_schema)

    def test_unreachable_types_dropped(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "island"},
            rules={"r": "~", "island": "~"},
            starts={"r"},
            mu={"r": "a", "island": "b"},
        )
        assert len(minimize_single_type(schema).types) == 1

    def test_canonical_output_for_equivalent_inputs(self, store_schema):
        m1 = minimize_single_type(store_schema)
        m2 = minimize_single_type(store_schema.relabel_types("zz"))
        assert len(m1.types) == len(m2.types)
        assert single_type_equivalent(m1, m2)

    @pytest.mark.parametrize("seed", range(10))
    def test_minimization_preserves_language_random(self, seed):
        schema = random_single_type_edtd(random.Random(seed))
        minimal = minimize_single_type(schema)
        assert single_type_equivalent(minimal, schema)
        assert len(minimal.types) <= len(schema.reduced().types)

    def test_idempotent(self, store_schema):
        once = minimize_single_type(store_schema)
        twice = minimize_single_type(once)
        assert len(once.types) == len(twice.types)

    def test_empty_language(self):
        empty = SingleTypeEDTD(
            alphabet={"a"}, types=set(), rules={}, starts=set(), mu={}
        )
        assert minimize_single_type(empty).types == frozenset()

    def test_type_minimal_size(self, store_schema):
        assert type_minimal_size(store_schema) == 3

    def test_no_pairwise_merge_possible(self, store_schema):
        """Local minimality: merging any two types of the minimal schema
        changes the language (checked by brute force on all pairs)."""
        minimal = minimize_single_type(store_schema)
        types = sorted(minimal.types, key=repr)
        for i, t1 in enumerate(types):
            for t2 in types[i + 1:]:
                if minimal.mu[t1] != minimal.mu[t2]:
                    continue
                merged = _merge_types(minimal, t1, t2)
                if merged is None:
                    continue
                assert not single_type_equivalent(merged, minimal), (t1, t2)


def _merge_types(schema: SingleTypeEDTD, keep, drop):
    """Redirect all occurrences of `drop` to `keep`; None if ill-formed."""
    from repro.errors import SchemaError, NotSingleTypeError
    from repro.strings.dfa import DFA

    def rename(t):
        return keep if t == drop else t

    rules = {}
    for type_ in schema.types:
        if type_ == drop:
            continue
        dfa = schema.rules[type_]
        transitions = {}
        for (src, sym), dst in dfa.transitions.items():
            transitions[(src, rename(sym))] = dst
        rules[type_] = DFA(
            dfa.states,
            {rename(s) for s in dfa.alphabet},
            transitions,
            dfa.initial,
            dfa.finals,
        )
    try:
        return SingleTypeEDTD(
            alphabet=schema.alphabet,
            types={t for t in schema.types if t != drop},
            rules=rules,
            starts={rename(t) for t in schema.starts},
            mu={t: schema.mu[t] for t in schema.types if t != drop},
        )
    except (SchemaError, NotSingleTypeError):
        return None
