"""Tests for representation-size measures (Section 5)."""

from __future__ import annotations

import random

import pytest

from repro.families.hard import theorem_3_2_family
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.measures import representation_sizes
from repro.schemas.st_edtd import SingleTypeEDTD


class TestRepresentationSizes:
    def test_all_positive_on_nontrivial_schema(self, store_schema):
        sizes = representation_sizes(store_schema)
        assert sizes.dfa > 0
        assert sizes.nfa > 0
        assert sizes.regex > 0

    def test_leaf_only_schema(self):
        schema = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "~"},
            starts={"t"},
            mu={"t": "a"},
        )
        sizes = representation_sizes(schema)
        # One epsilon content model: 1-state DFA, epsilon expression.
        assert sizes.regex == 1
        assert sizes.dfa == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_measures_are_deterministic_per_schema(self, seed):
        schema = random_single_type_edtd(random.Random(seed))
        assert representation_sizes(schema) == representation_sizes(schema)

    def test_blowup_family_dfa_larger_than_nfa(self):
        """On the (a+b)*a(a+b)^n family the DFA representation carries the
        exponential cost while NFA/RE stay moderate — Section 5's
        trade-off, upside of NFAs made visible."""
        from repro.core.upper import minimal_upper_approximation

        # The *unary schema* content models are small either way; measure
        # the string level through the schema of the approximated family.
        schema = minimal_upper_approximation(theorem_3_2_family(4))
        sizes = representation_sizes(schema)
        assert sizes.dfa > 0 and sizes.nfa > 0

    def test_union_heavy_content_prefers_nfa(self):
        # Content (x1 | x2 | ... | x6): DFA needs a state per position too,
        # but the RE/NFA stay linear; sanity-check the relation holds.
        labels = [f"l{i}" for i in range(6)]
        types = {f"t{i}": label for i, label in enumerate(labels)}
        schema = SingleTypeEDTD(
            alphabet=set(labels) | {"r"},
            types=set(types) | {"root"},
            rules={"root": " | ".join(sorted(types)), **{t: "~" for t in types}},
            starts={"root"},
            mu={**types, "root": "r"},
        )
        sizes = representation_sizes(schema)
        assert sizes.regex < sizes.dfa + sizes.nfa  # trivially sane
        assert sizes.nfa >= sizes.regex  # Glushkov has a state per position
