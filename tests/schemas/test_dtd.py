"""Unit tests for DTDs (Definition 2.1)."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.schemas.dtd import DTD
from repro.schemas.type_automaton import is_single_type
from repro.trees.tree import parse_tree


def catalog_dtd() -> DTD:
    return DTD(
        alphabet={"catalog", "product", "name", "price"},
        rules={
            "catalog": "product*",
            "product": "name, price?",
            "name": "~",
            "price": "~",
        },
        starts={"catalog"},
    )


class TestConstruction:
    def test_unknown_start_rejected(self):
        with pytest.raises(SchemaError):
            DTD(alphabet={"a"}, rules={}, starts={"z"})

    def test_unknown_rule_symbol_rejected(self):
        with pytest.raises(SchemaError):
            DTD(alphabet={"a"}, rules={"z": "~"}, starts={"a"})

    def test_content_over_unknown_symbols_rejected(self):
        with pytest.raises(SchemaError):
            DTD(alphabet={"a"}, rules={"a": "z"}, starts={"a"})

    def test_missing_rules_default_to_leaf(self):
        dtd = DTD(alphabet={"a", "b"}, rules={"a": "b"}, starts={"a"})
        assert dtd.accepts(parse_tree("a(b)"))
        assert not dtd.accepts(parse_tree("a(b(b))"))


class TestAcceptance:
    def test_accepts_valid_document(self):
        assert catalog_dtd().accepts(
            parse_tree("catalog(product(name, price), product(name))")
        )

    def test_rejects_wrong_root(self):
        assert not catalog_dtd().accepts(parse_tree("product(name)"))

    def test_rejects_bad_content(self):
        assert not catalog_dtd().accepts(parse_tree("catalog(product(price))"))

    def test_rejects_foreign_label(self):
        assert not catalog_dtd().accepts(parse_tree("catalog(intruder)"))

    def test_empty_catalog(self):
        assert catalog_dtd().accepts(parse_tree("catalog"))


class TestConversion:
    def test_to_edtd_equivalent(self, ab_universe_4):
        dtd = DTD(alphabet={"a", "b"}, rules={"a": "a? , b*"}, starts={"a"})
        edtd = dtd.to_edtd()
        for tree in ab_universe_4:
            assert dtd.accepts(tree) == edtd.accepts(tree), tree

    def test_to_edtd_is_single_type(self):
        # DTDs are local tree languages, a subclass of ST-REG.
        assert is_single_type(catalog_dtd().to_edtd())

    def test_size_positive(self):
        assert catalog_dtd().size() > 0
