"""Edge-case coverage for the schema layer."""

from __future__ import annotations

import pytest

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import complement_edtd, difference_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import count_trees_by_size, enumerate_trees
from repro.trees.tree import parse_tree


def leaf_only(label: str = "a", alphabet=None) -> SingleTypeEDTD:
    return SingleTypeEDTD(
        alphabet=alphabet or {label},
        types={"t"},
        rules={"t": "~"},
        starts={"t"},
        mu={"t": label},
    )


class TestSingletonLanguages:
    def test_leaf_only_schema(self):
        schema = leaf_only()
        assert enumerate_trees(schema, 4) == [parse_tree("a")]
        assert count_trees_by_size(schema, 4) == [0, 1, 0, 0, 0]

    def test_upper_of_singleton_is_itself(self):
        schema = leaf_only()
        assert single_type_equivalent(minimal_upper_approximation(schema), schema)

    def test_union_of_disjoint_singletons_is_exact(self):
        a = leaf_only("a", {"a", "b"})
        b = leaf_only("b", {"a", "b"})
        merged = upper_union(a, b)
        assert merged.accepts(parse_tree("a"))
        assert merged.accepts(parse_tree("b"))
        assert not merged.accepts(parse_tree("a(b)"))

    def test_difference_of_singletons(self):
        a = leaf_only("a", {"a", "b"})
        assert difference_edtd(a, a).is_empty_language()


class TestContentModelCoercion:
    """Schema constructors accept DFAs, NFAs, Regex objects and strings."""

    def test_dfa_content(self):
        from repro.strings.ops import as_min_dfa

        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": as_min_dfa("x*"), "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert schema.accepts(parse_tree("a(b, b)"))

    def test_nfa_content(self):
        from repro.strings.ops import as_nfa

        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": as_nfa("x | x, x"), "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert schema.accepts(parse_tree("a(b)"))
        assert schema.accepts(parse_tree("a(b, b)"))
        assert not schema.accepts(parse_tree("a")) and not schema.accepts(
            parse_tree("a(b, b, b)")
        )

    def test_regex_object_content(self):
        from repro.strings.regex import Plus, Sym

        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": Plus(Sym("x")), "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert not schema.accepts(parse_tree("a"))
        assert schema.accepts(parse_tree("a(b)"))


class TestMultiRootSchemas:
    def test_three_roots(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"ra", "rb", "rc"},
            rules={"ra": "~", "rb": "~", "rc": "~"},
            starts={"ra", "rb", "rc"},
            mu={"ra": "a", "rb": "b", "rc": "c"},
        )
        for label in "abc":
            assert schema.accepts(parse_tree(label))
        assert schema.start_symbols() == {"a", "b", "c"}

    def test_complement_of_multi_root(self, ab_universe_4):
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ra", "rb"},
            rules={"ra": "~", "rb": "~"},
            starts={"ra", "rb"},
            mu={"ra": "a", "rb": "b"},
        )
        comp = complement_edtd(schema)
        for tree in ab_universe_4:
            assert comp.accepts(tree) == (tree.size() > 1), tree


class TestWideContent:
    def test_many_distinct_children(self):
        labels = [f"l{i}" for i in range(8)]
        types = {f"t{i}": l for i, l in enumerate(labels)}
        rules = {"root": ", ".join(sorted(types))}
        rules.update({t: "~" for t in types})
        schema = SingleTypeEDTD(
            alphabet=set(labels) | {"root_l"},
            types=set(types) | {"root"},
            rules=rules,
            starts={"root"},
            mu={**types, "root": "root_l"},
        )
        children = ", ".join(types[t] for t in sorted(types))
        assert schema.accepts(parse_tree(f"root_l({children})"))
        minimal = minimize_single_type(schema)
        assert single_type_equivalent(minimal, schema)


class TestIdempotenceChains:
    def test_repeated_operations_stabilize(self, ab_star_schema, ab_pair_schema):
        merged = upper_union(ab_star_schema, ab_pair_schema)
        merged2 = upper_union(merged, ab_pair_schema)
        merged3 = upper_union(merged2, merged)
        assert single_type_equivalent(merged, merged2)
        assert single_type_equivalent(merged, merged3)

    def test_minimize_chain(self, store_schema):
        current = store_schema
        for _ in range(3):
            current = minimize_single_type(current)
        assert single_type_equivalent(current, store_schema)
