"""Tests for single-type EDTDs and one-pass top-down validation."""

from __future__ import annotations

import random

import pytest

from repro.errors import NotSingleTypeError
from repro.families.hard import example_2_6
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import enumerate_all_trees, sample_tree
from repro.trees.tree import Tree, parse_tree


class TestConstruction:
    def test_valid_schema_accepted(self, store_schema):
        assert isinstance(store_schema, SingleTypeEDTD)

    def test_edc_violation_rejected(self):
        with pytest.raises(NotSingleTypeError):
            SingleTypeEDTD(
                alphabet={"a", "b"},
                types={"r", "t1", "t2"},
                rules={"r": "t1 | t2"},
                starts={"r"},
                mu={"r": "a", "t1": "b", "t2": "b"},
            )

    def test_from_edtd_upgrade(self, store_schema):
        plain = EDTD(
            alphabet=store_schema.alphabet,
            types=store_schema.types,
            rules=store_schema.rules,
            starts=store_schema.starts,
            mu=store_schema.mu,
        )
        upgraded = SingleTypeEDTD.from_edtd(plain)
        assert upgraded.accepts(parse_tree("store(item(price))"))

    def test_from_edtd_rejects_violation(self):
        with pytest.raises(NotSingleTypeError):
            SingleTypeEDTD.from_edtd(example_2_6())


class TestTopDownValidation:
    def test_accepts(self, store_schema):
        assert store_schema.validate_top_down(
            parse_tree("store(item(price), item(price))")
        )

    def test_rejects_wrong_root(self, store_schema):
        assert not store_schema.validate_top_down(parse_tree("item(price)"))

    def test_rejects_unknown_child_label(self, store_schema):
        assert not store_schema.validate_top_down(parse_tree("store(price)"))

    def test_rejects_content_violation(self, store_schema):
        assert not store_schema.validate_top_down(parse_tree("store(item)"))

    def test_rejects_final_state_violation(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert not schema.validate_top_down(parse_tree("a(b)"))

    def test_agrees_with_bottom_up(self, ab_universe_4):
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x", "y"},
            rules={"r": "x*, y?", "x": "y?", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "a", "y": "b"},
        )
        bottom_up = EDTD(
            alphabet=schema.alphabet,
            types=schema.types,
            rules=schema.rules,
            starts=schema.starts,
            mu=schema.mu,
        )
        for tree in ab_universe_4:
            assert schema.validate_top_down(tree) == bottom_up.accepts(tree), tree

    def test_agrees_with_bottom_up_random(self, rng):
        for seed in range(8):
            schema = random_single_type_edtd(random.Random(seed))
            bottom_up = EDTD(
                alphabet=schema.alphabet,
                types=schema.types,
                rules=schema.rules,
                starts=schema.starts,
                mu=schema.mu,
            )
            for _ in range(10):
                tree = sample_tree(schema, rng, target_size=12)
                assert schema.validate_top_down(tree)
                assert bottom_up.accepts(tree)
                # Mutate a label and cross-check both algorithms agree.
                mutated = _mutate(tree, rng, sorted(schema.alphabet))
                assert schema.validate_top_down(mutated) == bottom_up.accepts(
                    mutated
                ), mutated


def _mutate(tree: Tree, rng: random.Random, labels: list) -> Tree:
    paths = list(tree.dom())
    path = paths[rng.randrange(len(paths))]
    new_label = rng.choice(labels)
    node = tree.subtree(path)
    return tree.replace_at(path, Tree(new_label, node.children))


class TestTypeOf:
    def test_types_along_path(self, store_schema):
        assert store_schema.type_of(("store",)) == "s"
        assert store_schema.type_of(("store", "item")) == "i"
        assert store_schema.type_of(("store", "item", "price")) == "p"

    def test_undefined_paths(self, store_schema):
        assert store_schema.type_of(()) is None
        assert store_schema.type_of(("item",)) is None
        assert store_schema.type_of(("store", "price")) is None

    def test_reduced_stays_single_type(self, store_schema):
        reduced = store_schema.reduced()
        assert isinstance(reduced, SingleTypeEDTD)

    def test_relabel_stays_single_type(self, store_schema):
        relabeled = store_schema.relabel_types()
        assert isinstance(relabeled, SingleTypeEDTD)
        assert relabeled.accepts(parse_tree("store(item(price))"))
