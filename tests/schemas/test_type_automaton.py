"""Tests for type automata (Definition 2.5, Observation 2.7)."""

from __future__ import annotations

from repro.families.hard import example_2_6
from repro.schemas.edtd import EDTD
from repro.schemas.type_automaton import (
    Q_INIT,
    assignable_types,
    is_single_type,
    type_automaton,
)


class TestConstruction:
    def test_states_are_types_plus_init(self, store_schema):
        automaton = type_automaton(store_schema)
        assert automaton.states == store_schema.types | {Q_INIT}

    def test_initial_transitions_from_starts(self, store_schema):
        automaton = type_automaton(store_schema)
        assert automaton.successors(Q_INIT, "store") == {"s"}
        assert automaton.successors(Q_INIT, "item") == frozenset()

    def test_observation_2_7_2_no_incoming_to_init(self, store_schema):
        automaton = type_automaton(store_schema)
        assert automaton.incoming_labels(Q_INIT) == frozenset()

    def test_state_labeled(self, store_schema):
        assert type_automaton(store_schema).is_state_labeled()

    def test_example_2_6_is_nondeterministic(self):
        automaton = type_automaton(example_2_6())
        # Both b-types reachable from t1 on label b.
        assert automaton.successors("t1", "b") == {"t2a", "t2b"}

    def test_no_finals(self, store_schema):
        assert type_automaton(store_schema).finals == frozenset()


class TestObservation273:
    """Type automaton is a DFA iff the EDTD is single-type."""

    def test_single_type_gives_dfa(self, store_schema):
        automaton = type_automaton(store_schema)
        assert all(len(dsts) <= 1 for dsts in automaton.transitions.values())
        assert is_single_type(store_schema)

    def test_non_single_type_gives_nfa(self):
        edtd = example_2_6()
        automaton = type_automaton(edtd)
        assert any(len(dsts) > 1 for dsts in automaton.transitions.values())
        assert not is_single_type(edtd)

    def test_start_conflict_detected(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"r1", "r2"},
            rules={"r1": "~", "r2": "r2?"},
            starts={"r1", "r2"},
            mu={"r1": "a", "r2": "a"},
        )
        assert not is_single_type(edtd)

    def test_content_conflict_across_words_detected(self):
        # tau1 and tau2 never occur in the same word but share a label:
        # Definition 2.4 still forbids it.
        edtd = EDTD(
            alphabet={"a", "b"},
            types={"r", "t1", "t2"},
            rules={"r": "t1 | t2", "t1": "~", "t2": "~"},
            starts={"r"},
            mu={"r": "a", "t1": "b", "t2": "b"},
        )
        assert not is_single_type(edtd)

    def test_unused_duplicate_label_type_is_fine(self):
        # Two same-label types in different content models are allowed.
        edtd = EDTD(
            alphabet={"a", "b"},
            types={"r", "u", "b1", "b2"},
            rules={"r": "u?, b1", "u": "b2", "b1": "~", "b2": "~"},
            starts={"r"},
            mu={"r": "a", "u": "a", "b1": "b", "b2": "b"},
        )
        assert is_single_type(edtd)


class TestAssignableTypes:
    def test_matches_ancestor_semantics(self, store_schema):
        assert assignable_types(store_schema, ("store",)) == {"s"}
        assert assignable_types(store_schema, ("store", "item")) == {"i"}
        assert assignable_types(store_schema, ("store", "item", "price")) == {"p"}

    def test_unreachable_string(self, store_schema):
        assert assignable_types(store_schema, ("item",)) == frozenset()
        assert assignable_types(store_schema, ("store", "price")) == frozenset()

    def test_nondeterministic_assignment(self):
        assert assignable_types(example_2_6(), ("a", "b")) == {"t2a", "t2b"}
