"""Tests for streaming one-pass validation."""

from __future__ import annotations

import random

import pytest

from repro.errors import ValidationError
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.streaming import (
    END,
    START,
    StreamingValidator,
    events_of_tree,
    validate_events,
    validate_xml_stream,
)
from repro.trees.generate import sample_tree
from repro.trees.tree import Tree, parse_tree


class TestEventsOfTree:
    def test_leaf(self):
        assert list(events_of_tree(parse_tree("a"))) == [(START, "a"), (END,)]

    def test_nested(self):
        events = list(events_of_tree(parse_tree("a(b, c)")))
        assert events == [
            (START, "a"),
            (START, "b"),
            (END,),
            (START, "c"),
            (END,),
            (END,),
        ]

    def test_balanced(self):
        events = list(events_of_tree(parse_tree("a(b(c), d(e(f)))")))
        assert sum(1 for e in events if e[0] == START) == sum(
            1 for e in events if e[0] == END
        )


class TestStreamingValidator:
    def test_valid_document(self, store_schema):
        tree = parse_tree("store(item(price), item(price))")
        assert validate_events(store_schema, events_of_tree(tree))

    def test_agrees_with_tree_validation(self, store_schema, ab_universe_4):
        schema = store_schema
        docs = [
            "store",
            "store(item(price))",
            "store(item)",
            "store(price)",
            "item(price)",
            "store(item(price), price)",
        ]
        for source in docs:
            tree = parse_tree(source)
            assert validate_events(schema, events_of_tree(tree)) == schema.accepts(
                tree
            ), source

    def test_agrees_with_tree_validation_random(self, rng):
        for seed in range(6):
            schema = random_single_type_edtd(random.Random(seed))
            for _ in range(8):
                tree = sample_tree(schema, rng, target_size=12)
                assert validate_events(schema, events_of_tree(tree))
                mutated = _mutate(tree, rng, sorted(schema.alphabet))
                assert validate_events(
                    schema, events_of_tree(mutated)
                ) == schema.accepts(mutated), (seed, mutated)

    def test_fails_eagerly_on_bad_root(self, store_schema):
        validator = StreamingValidator(store_schema)
        with pytest.raises(ValidationError):
            validator.feed((START, "price"))

    def test_fails_eagerly_on_bad_child(self, store_schema):
        validator = StreamingValidator(store_schema)
        validator.feed((START, "store"))
        with pytest.raises(ValidationError):
            validator.feed((START, "price"))

    def test_fails_on_incomplete_content(self, store_schema):
        validator = StreamingValidator(store_schema)
        validator.feed((START, "store"))
        validator.feed((START, "item"))
        with pytest.raises(ValidationError):
            validator.feed((END,))  # item needs a price

    def test_fails_on_unclosed_elements(self, store_schema):
        validator = StreamingValidator(store_schema)
        validator.feed((START, "store"))
        with pytest.raises(ValidationError):
            validator.finish()

    def test_fails_on_second_root(self, store_schema):
        validator = StreamingValidator(store_schema)
        validator.feed((START, "store"))
        validator.feed((END,))
        with pytest.raises(ValidationError):
            validator.feed((START, "store"))

    def test_fails_on_stray_end(self, store_schema):
        validator = StreamingValidator(store_schema)
        with pytest.raises(ValidationError):
            validator.feed((END,))

    def test_empty_stream_rejected(self, store_schema):
        validator = StreamingValidator(store_schema)
        with pytest.raises(ValidationError):
            validator.finish()

    def test_depth_tracks_open_elements(self, store_schema):
        validator = StreamingValidator(store_schema)
        assert validator.depth == 0
        validator.feed((START, "store"))
        validator.feed((START, "item"))
        assert validator.depth == 2
        validator.feed((START, "price"))
        validator.feed((END,))
        assert validator.depth == 2


class TestXmlStream:
    def test_valid(self, store_schema):
        assert validate_xml_stream(
            store_schema, "<store><item><price/></item></store>"
        )

    def test_invalid_content(self, store_schema):
        assert not validate_xml_stream(store_schema, "<store><price/></store>")

    def test_not_well_formed(self, store_schema):
        assert not validate_xml_stream(store_schema, "<store><item></store>")
        assert not validate_xml_stream(store_schema, "<store></item>")

    def test_garbage(self, store_schema):
        assert not validate_xml_stream(store_schema, "<store>text</store>")


def _mutate(tree: Tree, rng: random.Random, labels: list) -> Tree:
    paths = list(tree.dom())
    path = paths[rng.randrange(len(paths))]
    node = tree.subtree(path)
    return tree.replace_at(path, Tree(rng.choice(labels), node.children))
