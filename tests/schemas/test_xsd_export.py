"""Tests for W3C XSD export."""

from __future__ import annotations

import re

import pytest

from repro.errors import SchemaError
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.xsd_export import export_xsd


class TestExport:
    def test_basic_structure(self, store_schema):
        xsd = export_xsd(store_schema)
        assert xsd.startswith('<?xml version="1.0"?>')
        assert '<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">' in xsd
        assert xsd.rstrip().endswith("</xs:schema>")
        assert '<xs:element name="store"' in xsd
        assert xsd.count("<xs:complexType") == 3

    def test_balanced_tags(self, store_schema):
        xsd = export_xsd(store_schema)
        for tag in ("xs:schema", "xs:complexType", "xs:sequence", "xs:choice"):
            opens = len(re.findall(rf"<{tag}[ />]", xsd))
            closes = xsd.count(f"</{tag}>")
            selfclosed = len(re.findall(rf"<{tag}[^>]*/>", xsd))
            assert opens == closes + selfclosed, tag

    def test_occurs_attributes(self, store_schema):
        xsd = export_xsd(store_schema)
        # store has item*: minOccurs 0 maxOccurs unbounded
        assert 'minOccurs="0"' in xsd
        assert 'maxOccurs="unbounded"' in xsd

    def test_choice_rendering(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x", "y"},
            rules={"r": "x | y", "x": "~", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b", "y": "c"},
        )
        xsd = export_xsd(schema)
        assert "<xs:choice>" in xsd
        assert '<xs:element name="b"' in xsd
        assert '<xs:element name="c"' in xsd

    def test_leaf_type_empty_sequence(self, store_schema):
        xsd = export_xsd(store_schema)
        assert "<xs:sequence/>" in xsd  # price has no children

    def test_multiple_roots(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ra", "rb"},
            rules={"ra": "~", "rb": "~"},
            starts={"ra", "rb"},
            mu={"ra": "a", "rb": "b"},
        )
        xsd = export_xsd(schema)
        assert xsd.count("<xs:element name=") >= 2

    def test_empty_language_rejected(self):
        empty = SingleTypeEDTD(
            alphabet={"a"}, types=set(), rules={}, starts=set(), mu={}
        )
        with pytest.raises(SchemaError):
            export_xsd(empty)

    def test_upa_warning_emitted(self):
        # (b|c)* b (b|c) — "second-to-last child is b" has NO
        # deterministic expression (the classic UPA-impossible language).
        schema = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x", "y"},
            rules={"r": "(x | y)*, x, (x | y)", "x": "~", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b", "y": "c"},
        )
        xsd = export_xsd(schema)
        assert "UPA warning" in xsd

    def test_no_upa_warning_for_deterministic(self, store_schema):
        assert "UPA warning" not in export_xsd(store_schema)

    def test_upa_check_can_be_disabled(self):
        schema = SingleTypeEDTD(
            alphabet={"a", "b", "c"},
            types={"r", "x", "y"},
            rules={"r": "(x | y)*, x, (x | y)", "x": "~", "y": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b", "y": "c"},
        )
        assert "UPA warning" not in export_xsd(schema, check_upa=False)

    def test_export_of_construction_output(self, ab_star_schema, ab_pair_schema):
        from repro.core.upper import upper_union
        from repro.schemas.minimize import minimize_single_type

        merged = minimize_single_type(upper_union(ab_star_schema, ab_pair_schema))
        xsd = export_xsd(merged)
        assert "<xs:schema" in xsd
        assert "<xs:complexType" in xsd
