"""Tests for the plain-text schema format."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import dump_file, dumps, load_file, loads
from repro.schemas.type_automaton import is_single_type
from repro.trees.tree import parse_tree

STORE = """
# a store schema
alphabet: store item price
start: s
s [store] -> i*
i [item]  -> p
p [price] -> ~
"""


class TestLoads:
    def test_basic(self):
        schema = loads(STORE)
        assert isinstance(schema, SingleTypeEDTD)
        assert schema.accepts(parse_tree("store(item(price))"))
        assert not schema.accepts(parse_tree("store(price)"))

    def test_alphabet_inferred(self):
        schema = loads("start: t\nt [a] -> t?\n")
        assert schema.alphabet == {"a"}

    def test_alphabet_can_add_unused_labels(self):
        schema = loads("alphabet: a b\nstart: t\nt [a] -> ~\n")
        assert schema.alphabet == {"a", "b"}

    def test_comments_and_blank_lines(self):
        schema = loads("# c\n\nstart: t\nt [a] -> ~  # leaf\n")
        assert schema.accepts(parse_tree("a"))

    def test_non_single_type_degrades(self):
        text = "start: r\nr [a] -> x | y\nx [b] -> ~\ny [b] -> ~\n"
        schema = loads(text)
        assert isinstance(schema, EDTD)
        assert not is_single_type(schema)

    def test_strict_rejects_non_single_type(self):
        text = "start: r\nr [a] -> x | y\nx [b] -> ~\ny [b] -> ~\n"
        with pytest.raises(SchemaError):
            loads(text, strict=True)

    def test_missing_start_rejected(self):
        with pytest.raises(SchemaError):
            loads("t [a] -> ~\n")

    def test_start_without_rule_rejected(self):
        with pytest.raises(SchemaError):
            loads("start: zz\nt [a] -> ~\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(SchemaError):
            loads("start: t\nt [a] -> ~\nt [a] -> ~\n")

    def test_malformed_head_rejected(self):
        with pytest.raises(SchemaError):
            loads("start: t\nt a -> ~\n")

    def test_missing_arrow_rejected(self):
        with pytest.raises(SchemaError):
            loads("start: t\nt [a] ~\n")


class TestDumps:
    def test_round_trip(self, store_schema):
        text = dumps(store_schema)
        back = loads(text)
        assert single_type_equivalent(back, store_schema)

    def test_round_trip_tuple_types(self, store_schema):
        from repro.core.upper import minimal_upper_approximation

        upper = minimal_upper_approximation(store_schema)  # tuple types
        back = loads(dumps(upper))
        assert single_type_equivalent(back, store_schema)

    def test_file_round_trip(self, store_schema, tmp_path):
        path = tmp_path / "schema.txt"
        dump_file(store_schema, str(path))
        back = load_file(str(path))
        assert single_type_equivalent(back, store_schema)
