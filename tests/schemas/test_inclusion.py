"""Tests for Lemma 3.3 — PTIME inclusion into single-type EDTDs."""

from __future__ import annotations

import random

import pytest

from repro.errors import NotSingleTypeError
from repro.families.hard import example_2_6
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.generate import enumerate_trees


class TestBasicInclusion:
    def test_reflexive(self, store_schema):
        assert included_in_single_type(store_schema, store_schema)

    def test_proper_subset(self, store_schema):
        smaller = SingleTypeEDTD(
            alphabet=store_schema.alphabet,
            types=store_schema.types,
            rules={"s": "i, i", "i": "p", "p": "~"},
            starts=store_schema.starts,
            mu=store_schema.mu,
        )
        assert included_in_single_type(smaller, store_schema)
        assert not included_in_single_type(store_schema, smaller)

    def test_root_label_mismatch(self, ab_star_schema):
        other = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"rb"},
            rules={"rb": "~"},
            starts={"rb"},
            mu={"rb": "b"},
        )
        assert not included_in_single_type(ab_star_schema, other)

    def test_empty_language_included_everywhere(self, store_schema):
        empty = EDTD(alphabet={"store"}, types=set(), rules={}, starts=set(), mu={})
        assert included_in_single_type(empty, store_schema)

    def test_nothing_included_in_empty(self, store_schema):
        empty = SingleTypeEDTD(
            alphabet=store_schema.alphabet, types=set(), rules={}, starts=set(), mu={}
        )
        assert not included_in_single_type(store_schema, empty)

    def test_superset_must_be_single_type(self, store_schema):
        with pytest.raises(NotSingleTypeError):
            included_in_single_type(store_schema, example_2_6())

    def test_non_single_type_subset_allowed(self):
        # The *subset* side may be any EDTD (that is the point of the lemma).
        edtd = example_2_6()
        universal = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ua", "ub"},
            rules={"ua": "(ua | ub)*", "ub": "(ua | ub)*"},
            starts={"ua", "ub"},
            mu={"ua": "a", "ub": "b"},
        )
        assert included_in_single_type(edtd, universal)

    def test_depth_sensitive_inclusion(self):
        shallow = SingleTypeEDTD(
            alphabet={"a"},
            types={"t1", "t2"},
            rules={"t1": "t2?", "t2": "~"},
            starts={"t1"},
            mu={"t1": "a", "t2": "a"},
        )
        deep = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t?"},
            starts={"t"},
            mu={"t": "a"},
        )
        assert included_in_single_type(shallow, deep)
        assert not included_in_single_type(deep, shallow)


class TestAgainstExactInclusion:
    """Lemma 3.3 must agree with the exact tree-automata procedure."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_pairs(self, seed):
        rng = random.Random(seed)
        sub = random_edtd(rng, num_labels=3, num_types=4)
        sup = random_single_type_edtd(rng, num_labels=3, num_types=4)
        fast = included_in_single_type(sub, sup)
        exact = edtd_includes(sup, sub)
        assert fast == exact, (seed, fast, exact)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_st_pairs_both_directions(self, seed):
        rng = random.Random(1000 + seed)
        left = random_single_type_edtd(rng, num_labels=3, num_types=4)
        right = random_single_type_edtd(rng, num_labels=3, num_types=4)
        assert included_in_single_type(left, right) == edtd_includes(right, left)
        assert included_in_single_type(right, left) == edtd_includes(left, right)


class TestEquivalence:
    def test_equivalent_after_relabel(self, store_schema):
        assert single_type_equivalent(store_schema, store_schema.relabel_types())

    def test_not_equivalent(self, ab_star_schema, ab_pair_schema):
        assert not single_type_equivalent(ab_star_schema, ab_pair_schema)

    def test_equivalence_matches_enumeration(self, ab_star_schema):
        other = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x* | x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert single_type_equivalent(ab_star_schema, other)
        assert set(enumerate_trees(ab_star_schema, 4)) == set(
            enumerate_trees(other, 4)
        )
