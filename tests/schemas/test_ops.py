"""Tests for the boolean EDTD constructions (union, intersection,
complement of Theorem 3.9, difference of Theorem 3.10)."""

from __future__ import annotations

import random

import pytest

from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.ops import (
    complement_edtd,
    difference_edtd,
    edtd_intersection,
    edtd_union,
    st_intersection,
)
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.tree_automata.inclusion import edtd_equivalent, edtd_universal
from repro.trees.generate import enumerate_all_trees
from repro.trees.tree import parse_tree


class TestUnion:
    def test_extensional(self, ab_star_schema, ab_pair_schema, ab_universe_4):
        union = edtd_union(ab_star_schema, ab_pair_schema)
        for tree in ab_universe_4:
            expected = ab_star_schema.accepts(tree) or ab_pair_schema.accepts(tree)
            assert union.accepts(tree) == expected, tree

    def test_union_generally_not_single_type(self):
        left = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x?", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        right = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x", "x": "x?"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        assert not is_single_type(edtd_union(left, right))

    def test_union_with_disjoint_alphabets(self):
        left = SingleTypeEDTD(
            alphabet={"a"}, types={"t"}, rules={"t": "~"}, starts={"t"}, mu={"t": "a"}
        )
        right = SingleTypeEDTD(
            alphabet={"c"}, types={"t"}, rules={"t": "~"}, starts={"t"}, mu={"t": "c"}
        )
        union = edtd_union(left, right)
        assert union.accepts(parse_tree("a"))
        assert union.accepts(parse_tree("c"))


class TestIntersection:
    def test_extensional(self, ab_star_schema, ab_universe_4):
        other = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x, x*", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        inter = edtd_intersection(ab_star_schema, other)
        for tree in ab_universe_4:
            expected = ab_star_schema.accepts(tree) and other.accepts(tree)
            assert inter.accepts(tree) == expected, tree

    def test_st_intersection_is_single_type(self, ab_star_schema, ab_pair_schema):
        inter = st_intersection(ab_star_schema, ab_pair_schema)
        assert is_single_type(inter)

    def test_empty_intersection(self, ab_pair_schema):
        disjoint = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r"},
            rules={"r": "~"},
            starts={"r"},
            mu={"r": "b"},
        )
        inter = st_intersection(ab_pair_schema, disjoint)
        assert inter.is_empty_language()

    def test_deep_intersection(self, ab_universe_5):
        left = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "s", "x"},
            rules={"r": "s*", "s": "x*", "x": "~"},
            starts={"r"},
            mu={"r": "a", "s": "a", "x": "b"},
        )
        right = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "s", "x"},
            rules={"r": "s?", "s": "x, x*", "x": "~"},
            starts={"r"},
            mu={"r": "a", "s": "a", "x": "b"},
        )
        inter = st_intersection(left, right)
        for tree in ab_universe_5:
            assert inter.accepts(tree) == (
                left.accepts(tree) and right.accepts(tree)
            ), tree


class TestComplement:
    def test_extensional(self, ab_star_schema, ab_universe_4):
        comp = complement_edtd(ab_star_schema)
        for tree in ab_universe_4:
            assert comp.accepts(tree) == (not ab_star_schema.accepts(tree)), tree

    def test_partition_of_universe(self, ab_pair_schema):
        comp = complement_edtd(ab_pair_schema)
        assert edtd_universal(edtd_union(ab_pair_schema, comp))
        assert edtd_intersection(ab_pair_schema, comp).is_empty_language()

    def test_complement_of_empty_is_universal(self):
        empty = SingleTypeEDTD(
            alphabet={"a", "b"}, types=set(), rules={}, starts=set(), mu={}
        )
        comp = complement_edtd(empty)
        assert edtd_universal(comp)

    def test_complement_of_recursive_schema(self, a_universe_5):
        chains = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t?"},
            starts={"t"},
            mu={"t": "a"},
        )
        comp = complement_edtd(chains)
        for tree in a_universe_5:
            assert comp.accepts(tree) == (not chains.accepts(tree)), tree

    @pytest.mark.parametrize("seed", range(6))
    def test_complement_random(self, seed):
        schema = random_single_type_edtd(random.Random(seed), num_labels=2, num_types=4)
        comp = complement_edtd(schema)
        universe = enumerate_all_trees(schema.alphabet, 4)
        for tree in universe:
            assert comp.accepts(tree) == (not schema.accepts(tree)), (seed, tree)

    def test_polynomial_size(self, store_schema):
        comp = complement_edtd(store_schema)
        # |D_c| = O(|Sigma| * |D|): generous constant-factor check.
        assert comp.size() <= 40 * len(store_schema.alphabet) * store_schema.size()


class TestDifference:
    def test_extensional(self, ab_star_schema, ab_pair_schema, ab_universe_4):
        diff = difference_edtd(ab_star_schema, ab_pair_schema)
        for tree in ab_universe_4:
            expected = ab_star_schema.accepts(tree) and not ab_pair_schema.accepts(tree)
            assert diff.accepts(tree) == expected, tree

    def test_difference_with_self_is_empty(self, ab_star_schema):
        diff = difference_edtd(ab_star_schema, ab_star_schema)
        assert diff.is_empty_language()

    def test_difference_with_empty_is_identity(self, ab_star_schema, ab_universe_4):
        empty = SingleTypeEDTD(
            alphabet={"a", "b"}, types=set(), rules={}, starts=set(), mu={}
        )
        diff = difference_edtd(ab_star_schema, empty)
        for tree in ab_universe_4:
            assert diff.accepts(tree) == ab_star_schema.accepts(tree), tree

    def test_empty_minus_anything_is_empty(self, ab_star_schema):
        empty = SingleTypeEDTD(
            alphabet={"a", "b"}, types=set(), rules={}, starts=set(), mu={}
        )
        assert difference_edtd(empty, ab_star_schema).is_empty_language()

    def test_root_label_difference(self, ab_universe_4):
        left = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ra", "rb"},
            rules={"ra": "~", "rb": "~"},
            starts={"ra", "rb"},
            mu={"ra": "a", "rb": "b"},
        )
        right = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"ra"},
            rules={"ra": "~"},
            starts={"ra"},
            mu={"ra": "a"},
        )
        diff = difference_edtd(left, right)
        assert diff.accepts(parse_tree("b"))
        assert not diff.accepts(parse_tree("a"))

    @pytest.mark.parametrize("seed", range(8))
    def test_difference_random(self, seed):
        rng = random.Random(100 + seed)
        left = random_single_type_edtd(rng, num_labels=2, num_types=4)
        right = random_single_type_edtd(rng, num_labels=2, num_types=4)
        diff = difference_edtd(left, right)
        universe = enumerate_all_trees(left.alphabet | right.alphabet, 4)
        for tree in universe:
            expected = left.accepts(tree) and not right.accepts(tree)
            assert diff.accepts(tree) == expected, (seed, tree)

    def test_agrees_with_complement_route(self, ab_star_schema, ab_pair_schema):
        # L1 - L2 == L1 & complement(L2)
        diff = difference_edtd(ab_star_schema, ab_pair_schema)
        via_complement = edtd_intersection(
            ab_star_schema, complement_edtd(ab_pair_schema)
        )
        assert edtd_equivalent(diff, via_complement)
