"""Tests for schema pretty-printing and DFA -> regex conversion."""

from __future__ import annotations

import pytest

from repro.schemas.dfa_xsd import from_single_type
from repro.schemas.pretty import dfa_to_regex, format_edtd, format_xsd, simplify_display
from repro.strings.ops import as_min_dfa, equivalent
from repro.strings.regex import EPSILON, Opt, Plus, Star, Sym, Union


class TestDfaToRegex:
    @pytest.mark.parametrize(
        "source",
        [
            "a",
            "a, b",
            "a | b",
            "(a | b)*",
            "a+, b?",
            "a, (b, a)*",
            "~",
            "(a, b | b, a)+",
        ],
    )
    def test_language_preserved(self, source):
        dfa = as_min_dfa(source)
        back = dfa_to_regex(dfa)
        assert equivalent(back, source), (source, str(back))

    def test_empty_language(self):
        assert dfa_to_regex(as_min_dfa("#")).denotes_empty_language()


class TestSimplifyDisplay:
    def test_epsilon_union_plus_becomes_star(self):
        expr = Union(EPSILON, Plus(Sym("a")))
        assert simplify_display(expr) == Star(Sym("a"))

    def test_epsilon_union_becomes_opt(self):
        expr = Union(EPSILON, Sym("a"))
        assert simplify_display(expr) == Opt(Sym("a"))

    def test_nullable_opt_collapses(self):
        expr = Opt(Star(Sym("a")))
        assert simplify_display(expr) == Star(Sym("a"))


class TestFormatting:
    def test_format_edtd_mentions_everything(self, store_schema):
        text = format_edtd(store_schema, title="Store")
        assert "Store" in text
        assert "alphabet" in text
        assert "store" in text and "item" in text and "price" in text
        assert "->" in text

    def test_format_xsd(self, store_schema):
        text = format_xsd(from_single_type(store_schema.reduced()), title="XSD")
        assert "root elements" in text
        assert "content" in text
        assert "transitions" in text
