"""Tests for DFA-based XSDs and the Proposition 2.9 translations."""

from __future__ import annotations

import random

import pytest

from repro.errors import SchemaError
from repro.families.random_schemas import random_single_type_edtd
from repro.schemas.dfa_xsd import DFAXSD, from_single_type
from repro.schemas.type_automaton import Q_INIT
from repro.strings.dfa import DFA
from repro.trees.generate import enumerate_trees, sample_tree
from repro.trees.tree import parse_tree


def manual_xsd() -> DFAXSD:
    """Handmade DFA-based XSD: root a, children b*, grandchildren none."""
    automaton = DFA(
        states={"init", "qa", "qb"},
        alphabet={"a", "b"},
        transitions={("init", "a"): "qa", ("qa", "b"): "qb"},
        initial="init",
        finals=set(),
    )
    return DFAXSD(
        alphabet={"a", "b"},
        automaton=automaton,
        rules={"qa": "b*", "qb": "~"},
        starts={"a"},
    )


class TestConstruction:
    def test_manual_xsd_accepts(self):
        xsd = manual_xsd()
        assert xsd.accepts(parse_tree("a"))
        assert xsd.accepts(parse_tree("a(b, b)"))
        assert not xsd.accepts(parse_tree("a(b(b))"))
        assert not xsd.accepts(parse_tree("b"))

    def test_initial_with_incoming_rejected(self):
        automaton = DFA(
            states={"init"},
            alphabet={"a"},
            transitions={("init", "a"): "init"},
            initial="init",
            finals=set(),
        )
        with pytest.raises(SchemaError):
            DFAXSD(alphabet={"a"}, automaton=automaton, rules={}, starts={"a"})

    def test_non_state_labeled_rejected(self):
        automaton = DFA(
            states={"init", "q"},
            alphabet={"a", "b"},
            transitions={("init", "a"): "q", ("init", "b"): "q"},
            initial="init",
            finals=set(),
        )
        with pytest.raises(SchemaError):
            DFAXSD(alphabet={"a", "b"}, automaton=automaton, rules={}, starts={"a"})

    def test_start_without_transition_rejected(self):
        automaton = DFA(
            states={"init", "q"},
            alphabet={"a", "b"},
            transitions={("init", "a"): "q"},
            initial="init",
            finals=set(),
        )
        with pytest.raises(SchemaError):
            DFAXSD(alphabet={"a", "b"}, automaton=automaton, rules={}, starts={"b"})

    def test_content_symbol_without_transition_rejected(self):
        automaton = DFA(
            states={"init", "qa"},
            alphabet={"a", "b"},
            transitions={("init", "a"): "qa"},
            initial="init",
            finals=set(),
        )
        with pytest.raises(SchemaError):
            DFAXSD(
                alphabet={"a", "b"},
                automaton=automaton,
                rules={"qa": "b"},
                starts={"a"},
            )

    def test_state_of(self):
        xsd = manual_xsd()
        assert xsd.state_of(("a",)) == "qa"
        assert xsd.state_of(("a", "b")) == "qb"
        assert xsd.state_of(("b",)) is None

    def test_type_size(self):
        assert manual_xsd().type_size() == 2


class TestProposition29:
    """Both translations preserve the language; sizes stay linear."""

    def test_xsd_to_single_type(self, ab_universe_4):
        xsd = manual_xsd()
        st = xsd.to_single_type()
        for tree in ab_universe_4:
            assert xsd.accepts(tree) == st.accepts(tree), tree

    def test_single_type_to_xsd(self, store_schema):
        xsd = from_single_type(store_schema.reduced())
        assert xsd.accepts(parse_tree("store(item(price))"))
        assert not xsd.accepts(parse_tree("store(price)"))

    def test_round_trip_preserves_language(self, store_schema):
        st = store_schema.reduced()
        round_tripped = from_single_type(st).to_single_type()
        for tree in enumerate_trees(st, 7):
            assert round_tripped.accepts(tree)
        assert not round_tripped.accepts(parse_tree("store(item)"))

    def test_round_trip_random_schemas(self, rng):
        for seed in range(10):
            schema = random_single_type_edtd(random.Random(seed)).reduced()
            xsd = from_single_type(schema)
            back = xsd.to_single_type()
            for _ in range(8):
                tree = sample_tree(schema, rng, target_size=10)
                assert xsd.accepts(tree), (seed, tree)
                assert back.accepts(tree), (seed, tree)

    def test_type_count_matches_states(self, store_schema):
        st = store_schema.reduced()
        xsd = from_single_type(st)
        assert xsd.type_size() == len(st.types)
        assert len(xsd.to_single_type().types) == len(st.types)

    def test_ancestor_automaton_initial_is_q_init(self, store_schema):
        xsd = from_single_type(store_schema.reduced())
        assert xsd.automaton.initial is Q_INIT
