"""Tests for non-recursion and depth bounds (Observation 4.14)."""

from __future__ import annotations

from repro.families.hard import theorem_4_3_d1_d2, theorem_4_11_xn
from repro.schemas.edtd import EDTD
from repro.schemas.recursion import depth_bound, is_depth_bounded_by, is_non_recursive
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import enumerate_trees


class TestNonRecursive:
    def test_flat_schema(self, store_schema):
        assert is_non_recursive(store_schema)

    def test_recursive_schema(self):
        d1, _ = theorem_4_3_d1_d2()
        assert not is_non_recursive(d1)

    def test_self_loop(self):
        edtd = EDTD(
            alphabet={"a"}, types={"t"}, rules={"t": "t?"}, starts={"t"}, mu={"t": "a"}
        )
        assert not is_non_recursive(edtd)

    def test_recursion_through_useless_type_ignored(self):
        edtd = EDTD(
            alphabet={"a", "b"},
            types={"r", "loop"},
            rules={"r": "~", "loop": "loop"},
            starts={"r"},
            mu={"r": "a", "loop": "b"},
        )
        assert is_non_recursive(edtd)

    def test_long_cycle(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"t1", "t2", "t3"},
            rules={"t1": "t2?", "t2": "t3?", "t3": "t1?"},
            starts={"t1"},
            mu={"t1": "a", "t2": "a", "t3": "a"},
        )
        assert not is_non_recursive(edtd)


class TestDepthBound:
    def test_exact_bound(self, store_schema):
        assert depth_bound(store_schema) == 3

    def test_matches_enumeration(self, store_schema):
        bound = depth_bound(store_schema)
        depths = {t.depth() for t in enumerate_trees(store_schema, 8)}
        assert max(depths) == bound

    def test_unbounded_is_none(self):
        d1, _ = theorem_4_3_d1_d2()
        assert depth_bound(d1) is None

    def test_empty_language(self):
        empty = EDTD(alphabet={"a"}, types=set(), rules={}, starts=set(), mu={})
        assert depth_bound(empty) == 0

    def test_xn_of_4_11_is_recursive(self):
        # x_{n+1} -> x_{n+1}* makes the family unbounded in depth.
        assert depth_bound(theorem_4_11_xn(2)) is None

    def test_bound_at_most_schema_size(self):
        # Observation 4.14(3): depth bounded by |F|.
        chain = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"t1", "t2", "t3"},
            rules={"t1": "t2", "t2": "t3", "t3": "~"},
            starts={"t1"},
            mu={"t1": "a", "t2": "a", "t3": "b"},
        )
        bound = depth_bound(chain)
        assert bound == 3
        assert bound <= chain.size()

    def test_is_depth_bounded_by(self, store_schema):
        assert is_depth_bounded_by(store_schema, 3)
        assert is_depth_bounded_by(store_schema, 5)
        assert not is_depth_bounded_by(store_schema, 2)
