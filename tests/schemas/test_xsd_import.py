"""Tests for the W3C XSD importer and export/import round trips."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.families.real_world import ALL_FIXTURES
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.xsd_export import export_xsd
from repro.schemas.xsd_import import import_xsd
from repro.trees.tree import parse_tree

HANDWRITTEN = """<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <!-- a library of books -->
  <xs:element name="library" type="Lib"/>
  <xs:complexType name="Lib">
    <xs:element name="book" type="Book" minOccurs="0" maxOccurs="unbounded"/>
  </xs:complexType>
  <xs:complexType name="Book">
    <xs:sequence>
      <xs:element name="title" type="Leaf"/>
      <xs:choice minOccurs="0">
        <xs:element name="isbn" type="Leaf2"/>
        <xs:element name="issn" type="Leaf3"/>
      </xs:choice>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="Leaf"><xs:sequence/></xs:complexType>
  <xs:complexType name="Leaf2"><xs:sequence/></xs:complexType>
  <xs:complexType name="Leaf3"><xs:sequence/></xs:complexType>
</xs:schema>
"""


class TestImport:
    def test_handwritten_schema(self):
        schema = import_xsd(HANDWRITTEN)
        assert schema.accepts(parse_tree("library"))
        assert schema.accepts(parse_tree("library(book(title, isbn))"))
        assert schema.accepts(parse_tree("library(book(title), book(title, issn))"))
        assert not schema.accepts(parse_tree("library(book(isbn))"))
        assert not schema.accepts(parse_tree("book(title)"))

    def test_occurs_combinations(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="R"/>
          <xs:complexType name="R">
            <xs:sequence>
              <xs:element name="x" type="X" minOccurs="2" maxOccurs="3"/>
              <xs:element name="y" type="Y" minOccurs="1" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
          <xs:complexType name="X"/>
          <xs:complexType name="Y"/>
        </xs:schema>"""
        schema = import_xsd(text)
        assert schema.accepts(parse_tree("r(x, x, y)"))
        assert schema.accepts(parse_tree("r(x, x, x, y, y, y)"))
        assert not schema.accepts(parse_tree("r(x, y)"))
        assert not schema.accepts(parse_tree("r(x, x, x, x, y)"))
        assert not schema.accepts(parse_tree("r(x, x)"))

    def test_min_occurs_with_unbounded(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="R"/>
          <xs:complexType name="R">
            <xs:element name="x" type="X" minOccurs="2" maxOccurs="unbounded"/>
          </xs:complexType>
          <xs:complexType name="X"/>
        </xs:schema>"""
        schema = import_xsd(text)
        assert not schema.accepts(parse_tree("r(x)"))
        assert schema.accepts(parse_tree("r(x, x)"))
        assert schema.accepts(parse_tree("r(x, x, x, x)"))

    def test_rejects_wrong_root(self):
        with pytest.raises(SchemaError):
            import_xsd("<xs:element name='r' type='R'/>")

    def test_rejects_dangling_type(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="Missing"/>
        </xs:schema>"""
        with pytest.raises(SchemaError):
            import_xsd(text)

    def test_rejects_conflicting_element_names(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="R"/>
          <xs:complexType name="R">
            <xs:sequence>
              <xs:element name="x" type="T"/>
              <xs:element name="y" type="T"/>
            </xs:sequence>
          </xs:complexType>
          <xs:complexType name="T"/>
        </xs:schema>"""
        with pytest.raises(SchemaError):
            import_xsd(text)

    def test_rejects_unsupported_construct(self):
        text = """<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r" type="R"/>
          <xs:complexType name="R"><xs:all/></xs:complexType>
        </xs:schema>"""
        with pytest.raises(SchemaError):
            import_xsd(text)

    def test_rejects_mismatched_tags(self):
        with pytest.raises(SchemaError):
            import_xsd("<xs:schema><xs:element></xs:schema>")


class TestRoundTrip:
    def test_store_round_trip(self, store_schema):
        back = import_xsd(export_xsd(store_schema))
        assert single_type_equivalent(back, store_schema)

    @pytest.mark.parametrize("name", sorted(ALL_FIXTURES))
    def test_fixture_round_trips(self, name):
        schema = ALL_FIXTURES[name]()
        back = import_xsd(export_xsd(schema))
        assert single_type_equivalent(back, schema), name

    def test_construction_output_round_trip(self, ab_star_schema, ab_pair_schema):
        from repro.core.upper import upper_union
        from repro.schemas.minimize import minimize_single_type

        merged = minimize_single_type(upper_union(ab_star_schema, ab_pair_schema))
        back = import_xsd(export_xsd(merged))
        assert single_type_equivalent(back, merged)
