"""The disk tier behind the kernels, the facade, and the CLI.

Three integration properties:

* **transparency** — warm results are structurally identical to cold
  results, at every level (kernel DFA, whole approximation schema, CLI
  output bytes);
* **governed determinism** — a warm run replays the recorded budget cost,
  so ``BudgetUsage`` matches cold exactly and a budget too small for the
  cold construction also trips warm;
* **degradation** — a corrupted entry costs one recompute and nothing
  else.
"""

from __future__ import annotations

import os

import pytest

from repro.api import approximate_lower, approximate_upper, validate
from repro.cache import DISABLED, ArtifactCache
from repro.errors import BudgetExceededError
from repro.families.hard import example_2_6, theorem_3_2_family
from repro.runtime import Budget
from repro.strings.kernels import cached_min_dfa, clear_caches
from repro.schemas.text_format import dumps


@pytest.fixture
def store(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture(autouse=True)
def _fresh_memo():
    # The in-process memo tier would otherwise mask the disk tier.
    clear_caches()
    yield
    clear_caches()


class TestKernelTier:
    def test_min_dfa_round_trips_through_disk(self, store):
        with store:
            cold = cached_min_dfa("a, (b | c)*")
        clear_caches()
        with store:
            warm = cached_min_dfa("a, (b | c)*")
        assert store.hits >= 1
        assert warm.transitions == cold.transitions
        assert warm.initial == cold.initial
        assert warm.finals == cold.finals

    def test_disk_hit_recharges_budget(self, store):
        with store:
            meter_cold = Budget()
            cached_min_dfa("(a | b)*, c, c", budget=meter_cold)
        clear_caches()
        with store:
            meter_warm = Budget()
            cached_min_dfa("(a | b)*, c, c", budget=meter_warm)
        assert store.hits >= 1
        assert meter_warm.states == meter_cold.states
        assert meter_warm.steps == meter_cold.steps

    def test_no_store_means_no_disk_io(self, tmp_path):
        cached_min_dfa("a*")  # must not create any files anywhere under tmp
        assert not os.listdir(tmp_path)


class TestFacadeTier:
    def test_upper_warm_equals_cold(self, store):
        edtd = example_2_6()
        cold = approximate_upper(edtd, cache=store)
        clear_caches()
        warm = approximate_upper(edtd, cache=store)
        assert store.hits >= 1
        assert dumps(warm.schema) == dumps(cold.schema)
        assert warm.usage.states == cold.usage.states
        assert warm.usage.steps == cold.usage.steps

    def test_lower_warm_equals_cold(self, store):
        edtd = example_2_6()
        cold = approximate_lower(edtd, max_size=4, cache=store)
        clear_caches()
        warm = approximate_lower(edtd, max_size=4, cache=store)
        assert dumps(warm.schema) == dumps(cold.schema)
        assert warm.usage.steps == cold.usage.steps

    def test_lower_key_includes_max_size(self, store):
        edtd = example_2_6()
        four = approximate_lower(edtd, max_size=4, cache=store)
        two = approximate_lower(edtd, max_size=2, cache=store)
        # Different parameters must not alias to the same cached artifact.
        assert dumps(four.schema) != dumps(two.schema) or four.schema.type_size() == two.schema.type_size()
        again = approximate_lower(edtd, max_size=4, cache=store)
        assert dumps(again.schema) == dumps(four.schema)

    def test_too_small_budget_trips_warm_and_cold(self, store):
        edtd = theorem_3_2_family(7)
        with pytest.raises(BudgetExceededError):
            approximate_upper(edtd, budget=Budget(max_states=20), cache=store)
        clear_caches()
        with pytest.raises(BudgetExceededError):
            approximate_upper(edtd, budget=Budget(max_states=20), cache=store)

    def test_warm_hit_after_full_cold_run_still_respects_budget(self, store):
        edtd = example_2_6()
        cold = approximate_upper(edtd, cache=store)
        clear_caches()
        # A budget smaller than the recorded cost trips on the replay.
        limit = max(0, cold.usage.states - 1)
        with pytest.raises(BudgetExceededError):
            approximate_upper(edtd, budget=Budget(max_states=limit), cache=store)

    def test_disabled_still_computes(self, store):
        edtd = example_2_6()
        baseline = approximate_upper(edtd, cache=DISABLED)
        with store:
            ambient_off = approximate_upper(edtd, cache=DISABLED)
        assert store.writes == 0  # DISABLED suppresses the ambient store
        assert dumps(ambient_off.schema) == dumps(baseline.schema)

    def test_validate_accepts_cache_kwarg(self, store, store_schema):
        result = validate(store_schema, "<store><item><price/></item></store>", cache=store)
        assert result.valid

    def test_corrupt_whole_schema_entry_recomputes(self, store):
        edtd = example_2_6()
        cold = approximate_upper(edtd, cache=store)
        clear_caches()
        # Damage *every* entry; the warm run must silently recompute.
        for dirpath, _dirnames, filenames in os.walk(store.objects_dir):
            for name in filenames:
                path = os.path.join(dirpath, name)
                with open(path, "rb") as handle:
                    raw = handle.read()
                with open(path, "wb") as handle:
                    handle.write(raw[: max(1, len(raw) // 3)])
        warm = approximate_upper(edtd, cache=store)
        assert store.corrupt > 0
        assert dumps(warm.schema) == dumps(cold.schema)


class TestCliTier:
    def _schema_file(self, tmp_path) -> str:
        path = tmp_path / "schema.txt"
        path.write_text(dumps(example_2_6()))
        return str(path)

    def test_cache_dir_flag_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        schema = self._schema_file(tmp_path)
        cache_dir = str(tmp_path / "cli-cache")
        assert main(["--cache-dir", cache_dir, "to-xsd", schema]) == 0
        cold_out = capsys.readouterr().out
        assert os.path.isdir(os.path.join(cache_dir, "objects"))
        clear_caches()
        assert main(["--cache-dir", cache_dir, "to-xsd", schema]) == 0
        assert capsys.readouterr().out == cold_out

    def test_no_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        schema = self._schema_file(tmp_path)
        assert main(["--no-cache", "to-xsd", schema]) == 0
        assert capsys.readouterr().out

    def test_flags_are_mutually_exclusive(self, tmp_path, capsys):
        from repro.cli import main

        schema = self._schema_file(tmp_path)
        code = main(["--no-cache", "--cache-dir", str(tmp_path / "c"), "to-xsd", schema])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unusable_cache_dir_is_bad_input(self, tmp_path, capsys):
        from repro.cli import main

        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        schema = self._schema_file(tmp_path)
        code = main(["--cache-dir", str(blocker / "cache"), "to-xsd", schema])
        assert code == 2
