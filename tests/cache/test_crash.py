"""Crash-safety under a real ``SIGKILL`` mid-write.

A writer subprocess streams entries into a store as fast as it can; the
test kills it with ``SIGKILL`` (no cleanup handlers, no atexit — the
process just stops) at an arbitrary moment, then reopens the store and
asserts the contract:

* the store opens cleanly (no exceptions, orphan temp files swept);
* every surviving entry round-trips with a verified checksum — a partial
  write is either invisible (atomic rename never happened) or detected
  and quarantined, never served as data;
* the store remains fully writable afterwards.

The loop runs several kill points to land inside different phases of the
write path (header serialization, payload write, fsync, rename).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

from repro.cache import ArtifactCache, artifact_digest

_WRITER = r"""
import sys
sys.path.insert(0, {src!r})
from repro.cache import ArtifactCache, artifact_digest

store = ArtifactCache({root!r})
print("ready", flush=True)
i = 0
while True:
    digest = artifact_digest("crash", ("entry", i))
    store.put(digest, {{"index": i, "blob": "x" * 4096}}, i, i)
    i += 1
"""


def _run_killed_writer(root: str, delay: float) -> None:
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    process = subprocess.Popen(
        [sys.executable, "-c", _WRITER.format(src=os.path.abspath(src), root=root)],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        assert process.stdout is not None
        assert process.stdout.readline().strip() == "ready"
        time.sleep(delay)  # let it get some writes in flight
    finally:
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)


def test_sigkill_mid_write_leaves_store_consistent(tmp_path):
    root = str(tmp_path / "cache")
    for attempt, delay in enumerate((0.05, 0.15, 0.3)):
        _run_killed_writer(root, delay)

        store = ArtifactCache(root)  # reopen: must not raise
        # No temp litter survives the reopen (the writer's pid is dead).
        for dirpath, _dirnames, filenames in os.walk(store.objects_dir):
            for name in filenames:
                assert not name.startswith(".tmp-"), f"orphan survived: {name}"
        # Every entry the writer may have attempted either round-trips
        # exactly or reads as a miss — never garbage.
        served = 0
        for i in range(5000):
            digest = artifact_digest("crash", ("entry", i))
            loaded = store.get(digest)
            if loaded is None:
                continue
            value, states, steps = loaded
            assert value == {"index": i, "blob": "x" * 4096}
            assert (states, steps) == (i, i)
            served += 1
        assert store.corrupt == 0, "SIGKILL must not produce visible corruption"
        assert served > 0 or attempt == 0, "writer should persist some entries"
        # The store stays writable after the crash.
        probe = artifact_digest("crash", ("probe", attempt))
        assert store.put(probe, "alive", 1, 1)
        assert store.get(probe) == ("alive", 1, 1)
