"""ArtifactCache unit tests: round trips, corruption, epochs, eviction.

The crash-safety contract under test (see ``docs/CACHING.md``):

* a corrupted or truncated entry is **never served** — it is quarantined,
  counted, and the caller recomputes;
* a partially-written (crashed) entry is never *visible* — publication is
  atomic;
* a stale-epoch entry is deleted and recomputed, not misread;
* every degradation is observable (store counters + METRICS).
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro import observability as _obs
from repro.cache import (
    DISABLED,
    ArtifactCache,
    artifact_digest,
    configure,
    current_cache,
    resolve_cache,
)
from repro.cache import keys as cache_keys
from repro.errors import CacheError


@pytest.fixture
def store(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


DIGEST = artifact_digest("min_dfa", ("test-key", 1))
OTHER = artifact_digest("min_dfa", ("other-key", 2))


class TestRoundTrip:
    def test_miss_then_hit(self, store):
        assert store.get(DIGEST) is None
        assert store.put(DIGEST, {"value": 42}, 7, 19)
        assert store.get(DIGEST) == ({"value": 42}, 7, 19)
        assert store.hits == 1
        assert store.misses == 1
        assert store.writes == 1

    def test_distinct_digests_are_independent(self, store):
        store.put(DIGEST, "left", 1, 1)
        store.put(OTHER, "right", 2, 2)
        assert store.get(DIGEST)[0] == "left"
        assert store.get(OTHER)[0] == "right"

    def test_persists_across_instances(self, tmp_path):
        first = ArtifactCache(tmp_path / "cache")
        first.put(DIGEST, [1, 2, 3], 5, 5)
        second = ArtifactCache(tmp_path / "cache")
        assert second.get(DIGEST) == ([1, 2, 3], 5, 5)

    def test_overwrite_is_last_writer_wins(self, store):
        store.put(DIGEST, "old", 1, 1)
        store.put(DIGEST, "new", 1, 1)
        assert store.get(DIGEST)[0] == "new"

    def test_unpicklable_value_degrades_to_uncached(self, store):
        assert not store.put(DIGEST, lambda: None, 1, 1)
        assert store.get(DIGEST) is None

    def test_bad_root_raises_cache_error(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        with pytest.raises(CacheError):
            ArtifactCache(blocker / "cache")


class TestCorruption:
    def _damage(self, store, digest, mutate):
        path = store._entry_path(digest)
        with open(path, "rb") as handle:
            raw = handle.read()
        with open(path, "wb") as handle:
            handle.write(mutate(raw))

    @pytest.mark.parametrize(
        "mutate",
        [
            pytest.param(lambda raw: raw[: len(raw) // 2], id="truncated"),
            pytest.param(
                lambda raw: raw[:-1] + bytes([raw[-1] ^ 0xFF]), id="payload-bitflip"
            ),
            pytest.param(lambda raw: b"garbage, no newline", id="no-header"),
            pytest.param(lambda raw: b"{not json}\n" + raw, id="bad-header-json"),
            pytest.param(lambda raw: b"[1, 2]\n" + raw, id="header-not-object"),
            pytest.param(lambda raw: b"", id="empty-file"),
        ],
    )
    def test_damaged_entry_is_quarantined_not_served(self, store, mutate):
        store.put(DIGEST, {"precious": True}, 3, 3)
        self._damage(store, DIGEST, mutate)
        assert store.get(DIGEST) is None
        assert store.corrupt == 1
        assert os.listdir(store.quarantine_dir)
        # ... and the slot is immediately reusable:
        assert store.put(DIGEST, {"precious": True}, 3, 3)
        assert store.get(DIGEST) == ({"precious": True}, 3, 3)

    def test_header_payload_mismatch_is_quarantined(self, store):
        store.put(DIGEST, "value", 1, 1)

        def swap_payload(raw: bytes) -> bytes:
            newline = raw.index(b"\n")
            return raw[: newline + 1] + pickle.dumps("evil twin")

        self._damage(store, DIGEST, swap_payload)
        assert store.get(DIGEST) is None
        assert store.corrupt == 1

    def test_wrong_address_is_quarantined(self, store):
        # A valid entry copied to the wrong address must not be served:
        # the header's self-digest no longer matches the filename.
        store.put(DIGEST, "value", 1, 1)
        src = store._entry_path(DIGEST)
        dst = store._entry_path(OTHER)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        os.replace(src, dst)
        assert store.get(OTHER) is None
        assert store.corrupt == 1

    def test_unpicklable_payload_is_quarantined(self, store):
        store.put(DIGEST, "value", 1, 1)

        def break_pickle(raw: bytes) -> bytes:
            newline = raw.index(b"\n")
            header = json.loads(raw[:newline])
            payload = b"\x80\x05not a pickle"
            import hashlib

            header["payload_sha256"] = hashlib.sha256(payload).hexdigest()
            header["payload_len"] = len(payload)
            return json.dumps(header, sort_keys=True).encode() + b"\n" + payload

        self._damage(store, DIGEST, break_pickle)
        assert store.get(DIGEST) is None
        assert store.corrupt == 1

    def test_corruption_feeds_metrics(self, store):
        store.put(DIGEST, "value", 1, 1)
        self._damage(store, DIGEST, lambda raw: raw[:10])
        _obs.METRICS.reset()
        _obs.enable()
        try:
            assert store.get(DIGEST) is None
        finally:
            _obs.disable()
        metrics = _obs.METRICS.to_dict()
        assert metrics["cache.disk.corrupt"]["value"] == 1
        assert metrics["cache.disk.misses"]["value"] == 1
        _obs.METRICS.reset()


class TestEpoch:
    def test_stale_epoch_is_deleted_not_served(self, store, monkeypatch):
        store.put(DIGEST, "old-format", 1, 1)
        monkeypatch.setattr(cache_keys, "FORMAT_EPOCH", cache_keys.FORMAT_EPOCH + 1)
        assert store.get(DIGEST) is None
        assert store.stale == 1
        assert store.corrupt == 0  # stale is not corruption
        assert not os.path.exists(store._entry_path(DIGEST))
        assert not os.listdir(store.quarantine_dir)


class TestCrashSafety:
    def test_orphan_temp_from_dead_pid_is_swept(self, tmp_path):
        store = ArtifactCache(tmp_path / "cache")
        store.put(DIGEST, "value", 1, 1)
        # Simulate a writer that died mid-write: a temp file owned by a
        # pid that no longer exists.
        dead_pid = 2 ** 22 + 12345  # above default pid_max
        orphan = os.path.join(
            store.objects_dir, DIGEST[:2], f".tmp-{dead_pid}-1-{DIGEST[:8]}"
        )
        with open(orphan, "wb") as handle:
            handle.write(b"half-written garbage")
        reopened = ArtifactCache(tmp_path / "cache")
        assert not os.path.exists(orphan)
        assert reopened.get(DIGEST) == ("value", 1, 1)

    def test_temp_files_never_served_or_counted(self, store):
        tmp = os.path.join(store.objects_dir, DIGEST[:2], f".tmp-{os.getpid()}-9-zzz")
        os.makedirs(os.path.dirname(tmp), exist_ok=True)
        with open(tmp, "wb") as handle:
            handle.write(b"in flight")
        assert store.entry_count() == 0
        assert store.get(DIGEST) is None


class TestEviction:
    def test_lru_eviction_bounds_total_size(self, tmp_path):
        store = ArtifactCache(tmp_path / "cache", max_bytes=2_000)
        digests = [artifact_digest("min_dfa", ("bulk", i)) for i in range(16)]
        blob = "x" * 200
        for digest in digests:
            store.put(digest, blob, 1, 1)
        assert store.evictions > 0
        assert store.total_bytes() <= 2_000
        # The most recent write always survives.
        assert store.get(digests[-1]) is not None

    def test_hit_refreshes_lru_rank(self, tmp_path):
        store = ArtifactCache(tmp_path / "cache", max_bytes=2_000)
        first = artifact_digest("min_dfa", ("bulk", 0))
        store.put(first, "x" * 200, 1, 1)
        for i in range(1, 16):
            os.utime(store._entry_path(first))  # keep touching the first
            store.put(artifact_digest("min_dfa", ("bulk", i)), "x" * 200, 1, 1)
        assert store.get(first) is not None

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(CacheError):
            ArtifactCache(tmp_path / "cache", max_bytes=0)


class TestResolution:
    def test_no_configuration_resolves_to_none(self):
        assert resolve_cache() is None or resolve_cache() is not None  # smoke
        # (cannot assert None outright: the environment may configure one)

    def test_explicit_wins(self, store):
        assert resolve_cache(store) is store

    def test_disabled_shortcircuits(self, store):
        with store:
            assert resolve_cache(DISABLED) is None

    def test_context_manager_installs_ambient(self, store):
        assert current_cache() is not store
        with store:
            assert current_cache() is store
            assert resolve_cache() is store
        assert current_cache() is not store

    def test_context_manager_is_not_reentrant(self, store):
        from repro.errors import ReproError

        with store:
            with pytest.raises(ReproError):
                store.__enter__()

    def test_configure_default(self, store):
        previous = configure(store)
        try:
            assert resolve_cache() is store
        finally:
            configure(previous)

    def test_env_var_opens_store(self, tmp_path, monkeypatch):
        import repro.cache as cache_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        cache_module._reset_env_cache()
        try:
            resolved = resolve_cache()
            assert resolved is not None
            assert resolved.root == str(tmp_path / "env-cache")
        finally:
            cache_module._reset_env_cache()

    def test_unusable_env_var_degrades_to_no_cache(self, tmp_path, monkeypatch):
        import repro.cache as cache_module

        blocker = tmp_path / "blocker"
        blocker.write_text("file, not dir")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "cache"))
        cache_module._reset_env_cache()
        try:
            assert resolve_cache() is None
        finally:
            cache_module._reset_env_cache()

    def test_activation_disabled_suppresses_ambient(self, store):
        from repro.cache import activation

        with store:
            with activation(DISABLED) as effective:
                assert effective is None
                assert resolve_cache() is None
            assert resolve_cache() is store
