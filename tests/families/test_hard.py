"""Tests for the paper's hard-instance families."""

from __future__ import annotations

import pytest

from repro.core.upper import minimal_upper_approximation, upper_intersection, upper_union
from repro.families.hard import (
    example_2_6,
    theorem_3_2_family,
    theorem_3_6_family,
    theorem_3_8_family,
    theorem_4_3_d1_d2,
    theorem_4_3_xn,
    theorem_4_11_dtd,
    theorem_4_11_xn,
    unary_edtd_from_nfa,
    unary_single_type_from_dfa,
)
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import complement_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.strings.builders import at_most_k_occurrences
from repro.strings.ops import as_nfa
from repro.trees.tree import Tree, parse_tree, unary_tree


class TestUnaryLifting:
    def test_unary_edtd_membership_matches_words(self):
        edtd = unary_edtd_from_nfa(as_nfa("a, (b, a)*"))
        assert edtd.accepts(unary_tree("a"))
        assert edtd.accepts(unary_tree("aba"))
        assert not edtd.accepts(unary_tree("ab"))
        assert not edtd.accepts(parse_tree("a(b, a)"))  # branching excluded

    def test_unary_single_type_from_dfa(self):
        schema = unary_single_type_from_dfa(
            at_most_k_occurrences({"a", "b"}, "a", 1)
        )
        assert is_single_type(schema)
        assert schema.accepts(unary_tree("bab"))
        assert not schema.accepts(unary_tree("aa"))

    def test_empty_language_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            unary_edtd_from_nfa(as_nfa("#"))


class TestExample26:
    def test_not_single_type(self):
        assert not is_single_type(example_2_6())

    def test_membership(self):
        edtd = example_2_6()
        # d(t1) requires exactly one child (t1, t2a or t2b).
        assert not edtd.accepts(parse_tree("a"))
        assert edtd.accepts(parse_tree("a(b)"))
        assert edtd.accepts(parse_tree("a(a(b))"))
        assert edtd.accepts(parse_tree("a(b(b(a(b))))"))  # via the t2b chain
        assert not edtd.accepts(parse_tree("b"))


class TestTheorem32:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_membership(self, n):
        edtd = theorem_3_2_family(n)
        assert edtd.accepts(unary_tree("a" + "b" * n))
        assert edtd.accepts(unary_tree("ba" + "a" * n))
        assert not edtd.accepts(unary_tree("b" * (n + 1)))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_exponential_blowup(self, n):
        edtd = theorem_3_2_family(n)
        upper = minimal_upper_approximation(edtd, minimize=True)
        # The minimal DFA for (a+b)* a (a+b)^n has 2^(n+1) states; the
        # type-size of the minimal upper approximation matches.
        assert len(upper.types) == 2 ** (n + 1)
        # while the input stays linear:
        assert edtd.type_size() <= 3 * n + 5

    def test_upper_is_exact_on_unary(self):
        # Unary languages are ST-definable, so the approximation is exact.
        from repro.core.decision import is_single_type_definable

        assert is_single_type_definable(theorem_3_2_family(2))


class TestTheorem36:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_membership(self, n):
        d1, d2 = theorem_3_6_family(n)
        assert d1.accepts(unary_tree("a" * n + "b" * 5))
        assert not d1.accepts(unary_tree("a" * (n + 1)))
        assert d2.accepts(unary_tree("b" * n + "a" * 5))
        assert not d2.accepts(unary_tree("b" * (n + 1)))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_quadratic_type_size(self, n):
        d1, d2 = theorem_3_6_family(n)
        upper = upper_union(d1, d2, minimize=True)
        # Omega(n^2): the (k, l) counting pairs must stay distinct.
        assert len(upper.types) >= n * n
        # ... but still O(|D1| |D2|).
        assert len(upper.types) <= (len(d1.types) + 2) * (len(d2.types) + 2)


class TestTheorem38:
    def test_intersection_periods(self):
        d1, d2 = theorem_3_8_family(2)  # primes 3 and 5
        inter = upper_intersection(d1, d2, minimize=True)
        assert inter.accepts(unary_tree("a" * 15))
        assert inter.accepts(unary_tree("a" * 30))
        assert not inter.accepts(unary_tree("a" * 3))
        assert not inter.accepts(unary_tree("a" * 5))

    def test_quadratic_type_size(self):
        d1, d2 = theorem_3_8_family(2)
        inter = upper_intersection(d1, d2, minimize=True)
        assert len(inter.types) >= 15  # p1 * p2


class TestTheorem43:
    def test_xn_pairwise_distinct(self):
        d1, _ = theorem_4_3_d1_d2()
        for n in (1, 2, 3):
            xn = theorem_4_3_xn(n)
            # L(X_n) & L(D1) = {a^m(b) : m <= n}
            for m in range(1, n + 3):
                assert xn.accepts(unary_tree("a" * m + "b")) == (m <= n), (n, m)

    def test_xn_is_lower_approximation(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        from repro.core.decision import is_lower_approximation

        for n in (1, 2, 3):
            assert is_lower_approximation(theorem_4_3_xn(n), union), n

    def test_branching_depth_gate(self):
        xn = theorem_4_3_xn(2)
        assert not xn.accepts(parse_tree("a(a, a)"))       # branch at depth 2
        assert xn.accepts(parse_tree("a(a(a, a))"))        # branch at depth 3
        assert xn.accepts(unary_tree("aaaaa"))             # pure chains fine

    def test_paper_escape_tree(self):
        # The proof exchanges a^m(b) (m > n) with a^n(a, a) to reach a tree
        # outside the union — X_n must therefore reject a^m(b) for m > n.
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        escape = parse_tree("a(a(a(b)), a)")  # a^1( a^2 b , a )
        assert not union.accepts(escape)


class TestTheorem411:
    def test_dtd_and_complement(self):
        dtd = theorem_4_11_dtd()
        assert dtd.accepts(unary_tree("aaa"))
        assert not dtd.accepts(parse_tree("a(a, a)"))
        complement = complement_edtd(SingleTypeEDTD.from_edtd(dtd.to_edtd()))
        assert complement.accepts(parse_tree("a(a, a)"))
        assert not complement.accepts(unary_tree("aaa"))

    def test_xn_pairwise_distinct(self):
        def t_of_depth(m: int) -> Tree:
            tree = parse_tree("a(a, a)")
            for _ in range(m - 2):
                tree = Tree("a", [tree])
            return tree

        for n in (1, 2, 3):
            xn = theorem_4_11_xn(n)
            for m in range(2, n + 4):
                assert xn.accepts(t_of_depth(m)) == (m == n + 1), (n, m)

    def test_xn_subset_of_complement(self):
        dtd = theorem_4_11_dtd()
        complement = complement_edtd(SingleTypeEDTD.from_edtd(dtd.to_edtd()))
        from repro.core.decision import is_lower_approximation

        for n in (1, 2):
            assert is_lower_approximation(theorem_4_11_xn(n), complement), n

    def test_wide_branching_allowed(self):
        xn = theorem_4_11_xn(1)
        assert xn.accepts(parse_tree("a(a, a, a, a)"))
        assert xn.accepts(parse_tree("a(a(a), a)"))
