"""Tests for the random schema generators."""

from __future__ import annotations

import random

import pytest

from repro.families.random_schemas import random_edtd, random_pair, random_single_type_edtd
from repro.schemas.type_automaton import is_single_type


class TestRandomSingleType:
    @pytest.mark.parametrize("seed", range(15))
    def test_is_single_type_and_reduced(self, seed):
        schema = random_single_type_edtd(random.Random(seed))
        assert is_single_type(schema)
        assert schema.is_reduced()
        assert not schema.is_empty_language()

    def test_seed_determinism(self):
        s1 = random_single_type_edtd(random.Random(11))
        s2 = random_single_type_edtd(random.Random(11))
        assert s1.types == s2.types
        assert s1.mu == s2.mu

    def test_size_parameters_respected(self):
        schema = random_single_type_edtd(random.Random(3), num_labels=2, num_types=8)
        assert len(schema.alphabet) <= 2
        assert len(schema.types) <= 8

    def test_recursive_schemas_generated(self):
        # With recursion=1.0 some seed must produce an unbounded-depth
        # schema (a type reachable from itself).
        found = False
        for seed in range(20):
            schema = random_single_type_edtd(
                random.Random(seed), num_types=5, recursion=1.0
            )
            reachable = {t: schema.occurring_types(t) for t in schema.types}
            for start in schema.types:
                seen, stack = set(), [start]
                while stack:
                    current = stack.pop()
                    for nxt in reachable[current]:
                        if nxt == start:
                            found = True
                        if nxt not in seen:
                            seen.add(nxt)
                            stack.append(nxt)
            if found:
                break
        assert found


class TestRandomEdtd:
    @pytest.mark.parametrize("seed", range(10))
    def test_reduced_and_nonempty(self, seed):
        schema = random_edtd(random.Random(seed))
        assert schema.is_reduced()
        assert not schema.is_empty_language()

    def test_sometimes_not_single_type(self):
        results = {
            is_single_type(random_edtd(random.Random(seed)))
            for seed in range(30)
        }
        assert False in results  # the generator exercises the general case


class TestRandomPair:
    def test_shared_alphabet(self):
        left, right = random_pair(random.Random(0))
        assert left.alphabet & right.alphabet
