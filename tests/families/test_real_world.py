"""Tests for the realistic schema fixtures."""

from __future__ import annotations

import pytest

from repro.families.real_world import (
    ALL_FIXTURES,
    atom_feed,
    purchase_orders_v1,
    purchase_orders_v2,
    rss_feed,
    xhtml_fragment,
)
from repro.schemas.recursion import depth_bound, is_non_recursive
from repro.schemas.type_automaton import is_single_type
from repro.trees.xml_io import from_xml


class TestFixtures:
    @pytest.mark.parametrize("name", sorted(ALL_FIXTURES))
    def test_single_type_and_nonempty(self, name):
        schema = ALL_FIXTURES[name]()
        assert is_single_type(schema)
        assert not schema.is_empty_language()
        assert schema.is_reduced()

    def test_rss_membership(self):
        rss = rss_feed()
        assert rss.accepts(from_xml(
            "<rss><channel><title/><link/>"
            "<item><title/><link/><pubDate/></item>"
            "<item><title/><link/></item>"
            "</channel></rss>"
        ))
        assert not rss.accepts(from_xml("<rss><channel><link/><title/></channel></rss>"))

    def test_context_dependent_title_types(self):
        # The same label `title` carries different types under channel and
        # item — the typing feature DTDs lack and EDC permits.
        rss = rss_feed()
        assert rss.type_of(("rss", "channel", "title")) == "t_ctitle"
        assert rss.type_of(("rss", "channel", "item", "title")) == "t_ititle"

    def test_atom_membership(self):
        atom = atom_feed()
        assert atom.accepts(from_xml(
            "<feed><title/><entry><title/><link/><summary/></entry></feed>"
        ))
        assert not atom.accepts(from_xml("<feed><entry><title/><link/></entry></feed>"))

    def test_xhtml_recursive(self):
        xhtml = xhtml_fragment()
        assert not is_non_recursive(xhtml)
        assert depth_bound(xhtml) is None
        assert xhtml.accepts(from_xml(
            "<html><head><title/></head>"
            "<body><div><div><p><em/></p></div></body></html>".replace(
                "</div></body>", "</div></div></body>"
            )
        ))

    def test_orders_versions_nested(self):
        v1, v2 = purchase_orders_v1(), purchase_orders_v2()
        doc_v1 = from_xml(
            "<orders><order><customer/><line><sku/><qty/></line></order></orders>"
        )
        doc_v2 = from_xml(
            "<orders><order><priority/><customer/>"
            "<line><sku/><qty/><discount/></line></order></orders>"
        )
        assert v1.accepts(doc_v1) and v2.accepts(doc_v1)
        assert not v1.accepts(doc_v2) and v2.accepts(doc_v2)

    def test_v1_included_in_v2(self):
        from repro.schemas.inclusion import included_in_single_type

        assert included_in_single_type(purchase_orders_v1(), purchase_orders_v2())
        assert not included_in_single_type(purchase_orders_v2(), purchase_orders_v1())


class TestFixtureOperations:
    def test_rss_atom_merge(self):
        from repro.core.upper import upper_union
        from repro.schemas.minimize import minimize_single_type

        merged = minimize_single_type(upper_union(rss_feed(), atom_feed()))
        assert merged.accepts(from_xml(
            "<rss><channel><title/><link/></channel></rss>"
        ))
        assert merged.accepts(from_xml("<feed><title/></feed>"))

    def test_order_evolution_difference(self):
        from repro.core.upper import upper_difference
        from repro.schemas.ops import difference_edtd

        discount_doc = from_xml(
            "<orders><order><customer/>"
            "<line><sku/><qty/><discount/></line></order></orders>"
        )
        v1_doc = from_xml(
            "<orders><order><customer/><line><sku/><qty/></line></order></orders>"
        )
        exact = difference_edtd(purchase_orders_v2(), purchase_orders_v1())
        assert exact.accepts(discount_doc)
        assert not exact.accepts(v1_doc)
        upper = upper_difference(purchase_orders_v2(), purchase_orders_v1())
        assert upper.accepts(discount_doc)
        # The upper approximation legitimately overshoots back into v1:
        # exchanging lines between a discount-doc and a priority-doc
        # reassembles a plain v1 document, so no negative assertion here.

    def test_xsd_export_of_fixtures(self):
        from repro.schemas.xsd_export import export_xsd

        for name, factory in ALL_FIXTURES.items():
            document = export_xsd(factory())
            assert "<xs:schema" in document, name
