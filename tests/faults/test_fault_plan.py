"""Unit tests for the fault-injection layer itself.

The chaos suite (``test_chaos.py``) is only as trustworthy as the
injector: these tests pin the scheduling semantics (``at``/``every``),
glob matching, payload-damage determinism, the strict-prefix truncation
guarantee, the ``ACTIVE`` flag discipline, and the audit trail.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro import observability as _obs
from repro.errors import InjectedFaultError, ReproError
from repro.faults import FaultPlan, FaultRule


class TestFaultRule:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("budget.check", "explode")

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("budget.check", "raise", at=0)
        with pytest.raises(ValueError):
            FaultRule("budget.check", "raise", every=0)
        with pytest.raises(ValueError):
            FaultRule("cache.read", "truncate", fraction=1.5)

    def test_exact_match(self):
        rule = FaultRule("cache.read", "raise")
        assert rule.matches("cache.read")
        assert not rule.matches("cache.write")

    def test_glob_match(self):
        rule = FaultRule("cache.*", "raise")
        assert rule.matches("cache.read")
        assert rule.matches("cache.fsync")
        assert not rule.matches("budget.tick")

    def test_one_shot_schedule(self):
        rule = FaultRule("p", "raise", at=3)
        assert [rule.due(i) for i in range(1, 6)] == [False, False, True, False, False]

    def test_periodic_schedule(self):
        rule = FaultRule("p", "raise", at=2, every=3)
        due = [i for i in range(1, 12) if rule.due(i)]
        assert due == [2, 5, 8, 11]


class TestPlanLifecycle:
    def test_active_flag_tracks_context(self):
        assert not faults.ACTIVE
        with FaultPlan([]):
            assert faults.ACTIVE
            with FaultPlan([]):
                assert faults.ACTIVE
            assert faults.ACTIVE  # outer plan still active
        assert not faults.ACTIVE

    def test_not_reentrant(self):
        plan = FaultPlan([])
        with plan:
            with pytest.raises(ReproError):
                plan.__enter__()

    def test_no_plan_helpers_are_noops(self):
        faults.fire("budget.check")  # must not raise
        assert faults.transform("cache.read", b"data") == b"data"
        assert faults.current_plan() is None

    def test_innermost_plan_wins(self):
        outer = FaultPlan([FaultRule("budget.check", "raise")])
        inner = FaultPlan([])
        with outer:
            with inner:
                faults.fire("budget.check")  # inner plan: no rules, no raise
            with pytest.raises(InjectedFaultError):
                faults.fire("budget.check")


class TestFiring:
    def test_raise_on_schedule(self):
        plan = FaultPlan([FaultRule("budget.check", "raise", at=3)])
        with plan:
            faults.fire("budget.check")
            faults.fire("budget.check")
            with pytest.raises(InjectedFaultError) as excinfo:
                faults.fire("budget.check")
        assert excinfo.value.point == "budget.check"
        assert plan.arrivals["budget.check"] == 3
        assert [(r.point, r.mode, r.arrival) for r in plan.injected] == [
            ("budget.check", "raise", 3)
        ]

    def test_custom_error_class(self):
        plan = FaultPlan([FaultRule("cache.fsync", "raise", error=OSError)])
        with plan:
            with pytest.raises(OSError):
                faults.fire("cache.fsync")

    def test_arrivals_counted_even_without_rules(self):
        plan = FaultPlan([])
        with plan:
            for _ in range(5):
                faults.fire("budget.tick")
        assert plan.arrivals["budget.tick"] == 5
        assert plan.injected == []

    def test_corrupt_and_truncate_inert_at_control_points(self):
        plan = FaultPlan(
            [
                FaultRule("budget.check", "corrupt"),
                FaultRule("budget.check", "truncate"),
            ]
        )
        with plan:
            faults.fire("budget.check")  # nothing to damage; must not raise
        assert plan.injected == []

    def test_injection_lands_on_active_span(self):
        plan = FaultPlan([FaultRule("budget.check", "raise")])
        with _obs.Trace("chaos") as trace:
            with plan:
                with pytest.raises(InjectedFaultError):
                    faults.fire("budget.check")
        assert trace.root.attrs["fault_points"] == ["budget.check:raise@1"]


class TestTransforms:
    def test_truncate_is_strict_nonempty_prefix(self):
        plan = FaultPlan([FaultRule("xml.ingest", "truncate", every=1)])
        data = "<a><b/></a>"
        with plan:
            damaged = faults.transform("xml.ingest", data)
        assert damaged != data
        assert data.startswith(damaged)
        assert 0 < len(damaged) < len(data)

    def test_truncate_fraction_bounds(self):
        for fraction in (0.0, 0.5, 1.0):
            plan = FaultPlan([FaultRule("cache.read", "truncate", fraction=fraction)])
            with plan:
                damaged = faults.transform("cache.read", b"0123456789")
            assert 0 < len(damaged) < 10

    def test_corrupt_bytes_differs_and_preserves_length(self):
        plan = FaultPlan([FaultRule("cache.read", "corrupt")], seed=11)
        data = bytes(range(64))
        with plan:
            damaged = faults.transform("cache.read", data)
        assert damaged != data
        assert len(damaged) == len(data)
        assert sum(a != b for a, b in zip(data, damaged)) == 1

    def test_corrupt_text_differs_and_preserves_length(self):
        plan = FaultPlan([FaultRule("xml.ingest", "corrupt")], seed=11)
        data = "<root><child/></root>"
        with plan:
            damaged = faults.transform("xml.ingest", data)
        assert damaged != data
        assert len(damaged) == len(data)

    def test_corruption_is_deterministic_in_seed(self):
        def run(seed: int) -> bytes:
            with FaultPlan([FaultRule("cache.read", "corrupt")], seed=seed):
                return faults.transform("cache.read", bytes(range(64)))

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_empty_payload_still_damaged(self):
        plan = FaultPlan([FaultRule("cache.read", "corrupt")])
        with plan:
            assert faults.transform("cache.read", b"") != b""

    def test_schedule_applies_per_point(self):
        plan = FaultPlan([FaultRule("cache.read", "corrupt", at=2)])
        with plan:
            first = faults.transform("cache.read", b"payload")
            second = faults.transform("cache.read", b"payload")
        assert first == b"payload"
        assert second != b"payload"

    def test_injected_metrics_when_enabled(self):
        _obs.METRICS.reset()
        plan = FaultPlan([FaultRule("cache.read", "corrupt")])
        _obs.enable()
        try:
            with plan:
                faults.transform("cache.read", b"payload")
        finally:
            _obs.disable()
        metrics = _obs.METRICS.to_dict()
        assert metrics["faults.injected"]["value"] == 1
        assert metrics["faults.injected.cache.read"]["value"] == 1
        _obs.METRICS.reset()
