"""Chaos sweep: every governed operation, under every fault schedule.

The global robustness invariant (ISSUE 6):

    A run under fault injection either produces a result **equal to the
    fault-free oracle**, or raises an error from the
    :mod:`repro.errors` taxonomy.  A silently wrong answer is a hard
    failure.  A non-taxonomy exception escaping is a hard failure.

The sweep drives seven operations (``approximate_upper`` under both the
blind and the schema-guided determinization kernel,
``approximate_lower``, ``definability``, ``schema_includes``,
``validate``, and the asyncio validation service of ``repro.service``
end to end) through a matrix of fault schedules — every injection
point, every applicable mode, several arrival indices and seeds — with a
fresh on-disk artifact cache per run so the cache points are actually
reached.  Each run makes **two passes** under the same plan (cold, then
warm with the memo tier cleared), so read-path faults land on entries
the same plan's write-path faults may have damaged.

``test_injected_volume_floor`` (kept last in the file) asserts the suite
really injected faults in at least 240 passes — a schedule that never
fires is a vacuous test, and this floor is what CI enforces.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro import observability as _obs
from repro.api import (
    approximate_lower,
    approximate_upper,
    definability,
    schema_includes,
    validate,
)
from repro.cache import ArtifactCache
from repro.errors import ReproError
from repro.families.hard import example_2_6
from repro.faults import FaultPlan, FaultRule
from repro.runtime import Budget
from repro.schemas.text_format import dumps
from repro.strings.kernels import clear_caches as _clear_string_kernel_caches
from repro.strings.schema_guided import clear_caches as _clear_string_guided_caches
from repro.tree_automata.schema_guided import clear_caches as _clear_tree_guided_caches


def clear_caches():
    """Reset every memo tier an operation under test may populate, so the
    warm pass replays builds (and their governed fault points) honestly."""
    _clear_string_kernel_caches()
    _clear_string_guided_caches()
    _clear_tree_guided_caches()

# ----------------------------------------------------------------------
# Operations under test
# ----------------------------------------------------------------------

_DOC = "<store><item><price/></item></store>"


def _op_upper(cache):
    return dumps(approximate_upper(example_2_6(), cache=cache).schema)


def _op_guided_upper(cache):
    # Same construction as _op_upper but on the schema-guided kernel,
    # guided by the schema's own ancestor strings — exercises the guided
    # worklist's budget.* points and the strategy-keyed disk digests.
    edtd = example_2_6()
    return dumps(
        approximate_upper(
            edtd, strategy="schema-guided", guide=edtd, cache=cache
        ).schema
    )


def _op_lower(cache):
    return dumps(approximate_lower(example_2_6(), max_size=4, cache=cache).schema)


def _op_definability(cache):
    return definability(example_2_6(), cache=cache).verdict


def _op_includes(cache):
    edtd = example_2_6()
    upper = approximate_upper(edtd, cache=cache).schema
    return schema_includes(upper, edtd, cache=cache).verdict


def _store_schema():
    from repro.schemas.st_edtd import SingleTypeEDTD

    return SingleTypeEDTD(
        alphabet={"store", "item", "price"},
        types={"s", "i", "p"},
        rules={"s": "i*", "i": "p", "p": "~"},
        starts={"s"},
        mu={"s": "store", "i": "item", "p": "price"},
    )


def _op_validate(cache):
    return validate(_store_schema(), _DOC, cache=cache).valid


def _op_service(cache):
    # The asyncio service loop end to end: register into a fresh bounded
    # registry backed by the faulted cache, then validate (single and
    # batch) and approximate through the async surface.  Deterministic
    # state/step budgets only — wall-clock deadlines plus delay-mode
    # faults would diverge from the oracle without any fault surfacing.
    # Timing fields (elapsed_ms) and usage deltas are excluded from the
    # outcome: warm passes legitimately serve approximations from disk.
    from repro.service import ValidationService

    async def drive():
        service = ValidationService(capacity=4, cache=cache)
        info = await service.register_schema(dumps(_store_schema()))
        row = await service.validate(info["schema_id"], _DOC)
        batch = await service.validate_batch(
            info["schema_id"], [_DOC, "<store></store>", _DOC], max_steps=5
        )
        approx = await service.approximate(info["schema_id"], direction="upper")
        return (
            info["schema_id"],
            row["verdict"],
            [r["verdict"] for r in batch["results"]],
            batch["completed"],
            batch["partial"],
            approx["schema"],
        )

    return asyncio.run(drive())


OPERATIONS = {
    "upper": _op_upper,
    "guided-upper": _op_guided_upper,
    "lower": _op_lower,
    "definability": _op_definability,
    "includes": _op_includes,
    "validate": _op_validate,
    "service": _op_service,
}

# ----------------------------------------------------------------------
# Fault schedules
# ----------------------------------------------------------------------

# (id, rules, budget_kwargs) — budget_kwargs {} means ungoverned-unlimited;
# the checkpoint schedules deliberately run under a tripping budget so the
# checkpoint.materialize point is reached.
SCHEDULES = [
    ("check-raise-1", [FaultRule("budget.check", "raise", at=1)], {}),
    ("check-raise-3", [FaultRule("budget.check", "raise", at=3)], {}),
    ("tick-raise-1", [FaultRule("budget.tick", "raise", at=1)], {}),
    ("tick-raise-20", [FaultRule("budget.tick", "raise", at=20)], {}),
    ("tick-delay", [FaultRule("budget.tick", "delay", at=1, every=50)], {}),
    (
        "checkpoint-raise",
        [FaultRule("checkpoint.materialize", "raise", at=1)],
        {"max_states": 5},
    ),
    ("read-raise-taxonomy", [FaultRule("cache.read", "raise", at=1)], {}),
    (
        "read-raise-oserror",
        [FaultRule("cache.read", "raise", at=1, every=1, error=OSError)],
        {},
    ),
    ("read-corrupt-1", [FaultRule("cache.read", "corrupt", at=1, every=1)], {}),
    ("read-corrupt-3", [FaultRule("cache.read", "corrupt", at=3, every=2)], {}),
    ("read-truncate", [FaultRule("cache.read", "truncate", at=1, every=3)], {}),
    (
        "write-raise-oserror",
        [FaultRule("cache.write", "raise", at=1, every=1, error=OSError)],
        {},
    ),
    ("write-corrupt", [FaultRule("cache.write", "corrupt", at=1, every=1)], {}),
    ("write-truncate", [FaultRule("cache.write", "truncate", at=2, every=2)], {}),
    (
        "fsync-raise-oserror",
        [FaultRule("cache.fsync", "raise", at=1, every=2, error=OSError)],
        {},
    ),
    ("fsync-raise-taxonomy", [FaultRule("cache.fsync", "raise", at=2)], {}),
    (
        "cache-glob-oserror",
        [FaultRule("cache.*", "raise", at=1, every=1, error=OSError)],
        {},
    ),
    ("xml-corrupt", [FaultRule("xml.ingest", "corrupt", at=1, every=1)], {}),
    ("xml-truncate", [FaultRule("xml.ingest", "truncate", at=1, every=1)], {}),
]

# Default seed sweep; the CI chaos job widens coverage by running the
# suite once per matrix entry with a different REPRO_CHAOS_SEEDS value
# (comma-separated ints), so every push exercises disjoint corruption
# positions and delay phases without lengthening any single run.
SEEDS = tuple(
    int(raw)
    for raw in os.environ.get("REPRO_CHAOS_SEEDS", "0,1,2").split(",")
    if raw.strip()
)

#: Module-level tally of passes in which at least one fault really fired;
#: asserted against the CI floor by the last test in this file.
_INJECTED_PASSES = {"count": 0}


def _oracle(op, tmp_path, budget_kwargs):
    """Fault-free reference outcome: ("ok", value) or ("error", type)."""
    clear_caches()
    store = ArtifactCache(tmp_path / "oracle-cache")
    budget = Budget(**budget_kwargs) if budget_kwargs else None
    try:
        if budget is not None:
            with budget:
                return ("ok", op(store))
        return ("ok", op(store))
    except ReproError as error:
        return ("error", type(error).__name__)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "schedule_id,rules,budget_kwargs",
    [pytest.param(*schedule, id=schedule[0]) for schedule in SCHEDULES],
)
@pytest.mark.parametrize("op_name", sorted(OPERATIONS))
def test_fault_never_changes_the_answer(
    tmp_path, op_name, schedule_id, rules, budget_kwargs, seed
):
    op = OPERATIONS[op_name]
    expected = _oracle(op, tmp_path, budget_kwargs)

    store = ArtifactCache(tmp_path / "chaos-cache")
    plan = FaultPlan(rules, seed=seed)
    injected_before_pass: list[int] = []
    with _obs.Trace("chaos") as trace:
        with plan:
            for _pass in range(2):
                clear_caches()
                injected_before = len(plan.injected)
                budget = Budget(**budget_kwargs) if budget_kwargs else None
                try:
                    if budget is not None:
                        with budget:
                            outcome = ("ok", op(store))
                    else:
                        outcome = ("ok", op(store))
                except ReproError as error:
                    outcome = ("error", type(error).__name__)
                # -- the invariant ------------------------------------
                if outcome[0] == "ok":
                    if expected[0] == "ok":
                        assert outcome[1] == expected[1], (
                            f"SILENT DIVERGENCE under {schedule_id}/seed={seed}: "
                            f"{outcome[1]!r} != oracle {expected[1]!r}"
                        )
                    # oracle errored but the faulted run succeeded: only
                    # legal if the *fault-free* failure was a budget trip
                    # that an injected delay cannot un-trip — impossible
                    # here, so flag it.
                    else:
                        assert not plan.injected or budget_kwargs, (
                            f"fault run succeeded where oracle raised "
                            f"{expected[1]} under {schedule_id}"
                        )
                if len(plan.injected) > injected_before:
                    injected_before_pass.append(_pass)
                    _INJECTED_PASSES["count"] += 1
    # A taxonomy error caused by an injection must be attributable: the
    # firing is recorded on a span of the active trace.
    if plan.injected:
        recorded = [
            point
            for span in trace.root.walk()
            for point in span.attrs.get("fault_points", [])
        ]
        assert recorded, "injected faults left no span attribution"
    clear_caches()


def test_injected_volume_floor():
    """CI floor: the sweep above must have really injected faults.

    At the default three-seed sweep the floor is the required >= 240
    injected passes per CI job; a narrowed ``REPRO_CHAOS_SEEDS`` scales
    it proportionally so local single-seed runs stay meaningful.
    """
    floor = 80 * len(SEEDS)  # 240 at the default/CI three-seed sweep
    assert _INJECTED_PASSES["count"] >= floor, (
        f"only {_INJECTED_PASSES['count']} passes saw an injected fault "
        f"(floor {floor} for {len(SEEDS)} seeds); the chaos matrix has "
        "gone vacuous"
    )
