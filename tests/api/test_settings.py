"""`Settings` / `configured` / `configure`: facade-wide defaults."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Settings, configure, configured, current_settings
from repro.runtime import Budget


@pytest.fixture(autouse=True)
def restore_defaults():
    yield
    configure(Settings())


class TestSettings:
    def test_frozen(self):
        settings = Settings(timeout=1.0)
        with pytest.raises(AttributeError):
            settings.timeout = 2.0

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            Settings(strategy="psychic")

    def test_budget_maps_fields(self):
        budget = Settings(timeout=1.5, max_states=10, max_steps=20).budget()
        assert isinstance(budget, Budget)
        assert budget.deadline is not None  # derived from the timeout
        assert budget.max_states == 10
        assert budget.max_steps == 20
        assert Settings().budget().deadline is None


class TestConfigured:
    def test_installs_for_the_extent(self):
        settings = Settings(max_steps=7)
        assert current_settings().max_steps is None
        with configured(settings):
            assert current_settings() is settings
        assert current_settings().max_steps is None

    def test_nests(self):
        outer = Settings(max_steps=1)
        inner = Settings(max_steps=2)
        with configured(outer):
            with configured(inner):
                assert current_settings() is inner
            assert current_settings() is outer

    def test_is_task_local(self):
        async def probe():
            async def child():
                with configured(Settings(max_steps=99)):
                    await asyncio.sleep(0)
                    return current_settings().max_steps

            task = asyncio.create_task(child())
            await asyncio.sleep(0)
            here = current_settings().max_steps
            return here, await task

        here, child_value = asyncio.run(probe())
        assert here is None
        assert child_value == 99


class TestConfigure:
    def test_swaps_process_default_and_returns_previous(self):
        previous = configure(Settings(max_states=5))
        assert current_settings().max_states == 5
        restored = configure(previous)
        assert restored.max_states == 5

    def test_legacy_keyword_form_warns_and_applies(self):
        with pytest.warns(DeprecationWarning):
            configure(timeout=2.0)
        assert current_settings().timeout == 2.0

    def test_legacy_form_overlays_current_default(self):
        configure(Settings(max_steps=3))
        with pytest.warns(DeprecationWarning):
            configure(timeout=1.0)
        settings = current_settings()
        assert settings.max_steps == 3
        assert settings.timeout == 1.0

    def test_explicit_settings_do_not_warn(self, recwarn):
        configure(Settings(timeout=1.0))
        assert not [w for w in recwarn if w.category is DeprecationWarning]
