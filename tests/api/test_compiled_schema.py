"""The compile-once handle lifecycle: `compile_schema` / `CompiledSchema`
and the free-function facade rebased on top of it."""

from __future__ import annotations

import pytest

import repro.cache as cache_mod
from repro.api import (
    CompiledSchema,
    approximate_upper,
    clear_handles,
    compile_schema,
    definability,
    schema_equivalent,
    schema_includes,
    validate,
)
from repro.errors import BudgetExceededError
from repro.families.hard import example_2_6
from repro.observability import METRICS
from repro.runtime import Budget
from repro.schemas.text_format import dumps
from repro.schemas.type_automaton import is_single_type
from repro.trees.tree import parse_tree


@pytest.fixture(autouse=True)
def fresh_facade():
    clear_handles()
    METRICS.reset()
    yield
    clear_handles()
    METRICS.reset()


class TestCompileSchema:
    def test_returns_frozen_handle(self, store_schema):
        handle = compile_schema(store_schema)
        assert isinstance(handle, CompiledSchema)
        assert handle.schema is store_schema
        with pytest.raises(AttributeError):
            handle.schema_id = "nope"

    def test_accepts_text_source(self, store_schema):
        handle = compile_schema(dumps(store_schema))
        assert handle.validate("<store><item><price/></item></store>").valid

    def test_schema_id_is_content_addressed(self, store_schema):
        copy = store_schema.__class__(
            alphabet=set(store_schema.alphabet),
            types=set(store_schema.types),
            rules=dict(store_schema.rules),
            starts=set(store_schema.starts),
            mu=dict(store_schema.mu),
        )
        assert compile_schema(store_schema).schema_id == compile_schema(copy).schema_id

    def test_strategy_changes_schema_id(self, store_schema):
        blind = compile_schema(store_schema, strategy="blind")
        guided = compile_schema(store_schema, strategy="schema-guided")
        assert blind.schema_id != guided.schema_id

    def test_guide_is_lazy_and_memoized(self, store_schema):
        handle = compile_schema(store_schema)
        assert handle.guide is handle.guide

    def test_single_type_classification(self, store_schema):
        assert compile_schema(store_schema).is_single_type
        assert not compile_schema(example_2_6()).is_single_type


class TestHandleMethods:
    def test_validate_three_ways(self, store_schema):
        handle = compile_schema(store_schema)
        assert handle.validate("<store><item><price/></item></store>").valid
        assert not handle.validate("<store><price/></store>").valid
        assert handle.validate(parse_tree("store(item(price))")).valid

    def test_validate_charges_one_step_per_node(self, store_schema):
        handle = compile_schema(store_schema)
        doc = "<store><item><price/></item></store>"
        result = handle.validate(doc, budget=Budget(max_steps=10))
        assert result.usage.steps == 3
        with pytest.raises(BudgetExceededError) as info:
            handle.validate(doc, budget=Budget(max_steps=2))
        assert info.value.reason == "max-steps"

    def test_approximations_match_free_functions(self):
        edtd = example_2_6()
        handle = compile_schema(edtd)
        from_handle = handle.approximate_upper(minimize=True).schema
        from_free = approximate_upper(edtd, minimize=True).schema
        assert dumps(from_handle) == dumps(from_free)
        assert is_single_type(from_handle)
        lower = handle.approximate_lower(max_size=4).schema
        assert is_single_type(lower)

    def test_inclusion_and_equivalence(self, store_schema):
        edtd = example_2_6()
        handle = compile_schema(edtd)
        upper = handle.approximate_upper().schema
        assert compile_schema(upper).includes(edtd)
        assert not handle.includes(store_schema)
        assert compile_schema(upper).equivalent(upper)

    def test_definability(self, store_schema):
        report = compile_schema(store_schema).definability()
        assert report  # single-type schemas are trivially definable


class TestOneCompilePerHandle:
    """The regression the redesign exists for: fingerprinting and
    reduction happen once per handle, never per call."""

    def _counting_key(self, monkeypatch):
        calls = {"count": 0}
        real = cache_mod.schema_structural_key

        def counted(edtd):
            calls["count"] += 1
            return real(edtd)

        monkeypatch.setattr(cache_mod, "schema_structural_key", counted)
        return calls

    def test_handle_methods_never_refingerprint(self, monkeypatch, tmp_path):
        edtd = example_2_6()
        calls = self._counting_key(monkeypatch)
        store = cache_mod.ArtifactCache(tmp_path / "cache")
        handle = compile_schema(edtd, cache=store)
        compiled = calls["count"]
        assert compiled >= 1
        handle.validate("<a><b/></a>")
        handle.approximate_upper()
        handle.approximate_upper(minimize=True)
        handle.approximate_lower(max_size=4)
        handle.definability()
        assert calls["count"] == compiled

    def test_free_functions_share_one_handle(self, monkeypatch):
        edtd = example_2_6()
        calls = self._counting_key(monkeypatch)
        approximate_upper(edtd)
        approximate_upper(edtd, minimize=True)
        validate(edtd, "<a><b/></a>")
        definability(edtd)
        assert calls["count"] == 1

    def test_inclusion_free_functions_reuse_handles(self, monkeypatch):
        edtd = example_2_6()
        calls = self._counting_key(monkeypatch)
        upper = approximate_upper(edtd).schema
        schema_includes(upper, edtd)
        schema_includes(upper, edtd)
        schema_equivalent(upper, upper)
        # one compile for edtd, one for upper — repeats are free
        assert calls["count"] == 2

    def test_handles_do_not_keep_schemas_alive(self):
        import gc
        import weakref

        edtd = example_2_6()
        ref = weakref.ref(edtd)
        validate(edtd, "<a><b/></a>")
        del edtd
        gc.collect()
        assert ref() is None


class TestDigestParity:
    """Handle-based calls hit the same persistent-cache digests as the
    pre-handle facade: a result written through one route is read back
    through the other."""

    def test_free_then_handle_is_a_disk_hit(self, tmp_path):
        edtd = example_2_6()
        store = cache_mod.ArtifactCache(tmp_path / "cache")
        first = approximate_upper(edtd, cache=store)
        hits_before = store.stats()["hits"]
        clear_handles()  # force a fresh handle: only the disk tier survives
        again = compile_schema(edtd, cache=store).approximate_upper()
        assert store.stats()["hits"] == hits_before + 1
        assert dumps(again.schema) == dumps(first.schema)
