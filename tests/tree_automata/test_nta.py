"""Tests for unranked non-deterministic tree automata."""

from __future__ import annotations

import pytest

from repro.errors import AutomatonError
from repro.families.hard import example_2_6
from repro.tree_automata.nta import NTA, edtd_from_nta, nta_from_edtd
from repro.trees.tree import parse_tree


def boolean_nta() -> NTA:
    """Evaluates and/or/true/false trees to their truth value."""
    return NTA(
        states={"T", "F"},
        alphabet={"and", "or", "true", "false"},
        rules={
            ("T", "true"): "~",
            ("F", "false"): "~",
            ("T", "and"): "(T)+",
            ("F", "and"): "(T | F)*, F, (T | F)*",
            ("T", "or"): "(T | F)*, T, (T | F)*",
            ("F", "or"): "(F)+",
        },
        finals={"T"},
    )


class TestRuns:
    def test_accepts_true_formula(self):
        assert boolean_nta().accepts(parse_tree("and(true, or(false, true))"))

    def test_rejects_false_formula(self):
        assert not boolean_nta().accepts(parse_tree("and(true, false)"))

    def test_possible_states(self):
        nta = boolean_nta()
        assert nta.possible_states(parse_tree("or(false, false)")) == {"F"}
        assert nta.possible_states(parse_tree("true")) == {"T"}

    def test_no_rule_no_state(self):
        nta = boolean_nta()
        assert nta.possible_states(parse_tree("true(true)")) == frozenset()

    def test_bad_rule_state_rejected(self):
        with pytest.raises(AutomatonError):
            NTA({"q"}, {"a"}, {("z", "a"): "~"}, set())

    def test_bad_final_rejected(self):
        with pytest.raises(AutomatonError):
            NTA({"q"}, {"a"}, {}, {"z"})


class TestTranslations:
    def test_nta_from_edtd(self, store_schema, ab_universe_4):
        nta = nta_from_edtd(store_schema)
        assert nta.accepts(parse_tree("store(item(price))"))
        assert not nta.accepts(parse_tree("store(price)"))

    def test_round_trip_on_ambiguous_edtd(self, ab_universe_4):
        edtd = example_2_6()
        nta = nta_from_edtd(edtd)
        back = edtd_from_nta(nta)
        for tree in ab_universe_4:
            expected = edtd.accepts(tree)
            assert nta.accepts(tree) == expected, tree
            assert back.accepts(tree) == expected, tree

    def test_edtd_from_nta_boolean(self):
        edtd = edtd_from_nta(boolean_nta())
        assert edtd.accepts(parse_tree("or(false, true)"))
        assert not edtd.accepts(parse_tree("or(false, false)"))

    def test_size(self):
        assert boolean_nta().size() > 0
