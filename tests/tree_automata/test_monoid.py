"""Tests for monoid forest automata (Section 4.4.1)."""

from __future__ import annotations

import pytest

from repro.errors import AutomatonError
from repro.strings.ops import as_min_dfa
from repro.tree_automata.monoid import (
    FiniteMonoid,
    MonoidForestAutomaton,
    forest_automaton_for_child_language,
    transition_monoid_from_dfa,
)
from repro.trees.tree import Tree, parse_tree


def z2() -> FiniteMonoid:
    return FiniteMonoid(
        elements={0, 1},
        operation={(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 0},
        identity=0,
    )


class TestFiniteMonoid:
    def test_z2_laws(self):
        monoid = z2()
        assert monoid.sum([1, 1, 1]) == 1
        assert monoid.sum([]) == 0

    def test_identity_must_be_element(self):
        with pytest.raises(AutomatonError):
            FiniteMonoid({0}, {(0, 0): 0}, identity=7)

    def test_closure_enforced(self):
        with pytest.raises(AutomatonError):
            FiniteMonoid({0, 1}, {(0, 0): 0, (0, 1): 1, (1, 0): 1, (1, 1): 7}, 0)

    def test_associativity_enforced(self):
        # A magma that is not associative: x+y = x unless both are 1.
        with pytest.raises(AutomatonError):
            FiniteMonoid(
                {0, 1, 2},
                {
                    (a, b): (2 if (a, b) == (1, 1) else a) if (a or b) else 0
                    for a in (0, 1, 2)
                    for b in (0, 1, 2)
                },
                0,
            )

    def test_identity_law_enforced(self):
        with pytest.raises(AutomatonError):
            FiniteMonoid({0, 1}, {(a, b): 0 for a in (0, 1) for b in (0, 1)}, 0)


class TestMonoidForestAutomaton:
    def test_leaf_parity(self):
        """Count a-leaves modulo 2 across a whole forest."""
        monoid = z2()
        automaton = MonoidForestAutomaton(
            monoid,
            alphabet={"a", "b"},
            delta={
                ("a", 0): 1, ("a", 1): 1,   # an a-node flips to odd-ish
                ("b", 0): 0, ("b", 1): 1,   # b passes the subforest parity
            },
            finals={0},
        )
        # Interpretation: value = parity of a-nodes along ... check a few.
        assert automaton.value_of_tree(parse_tree("a")) == 1
        assert automaton.value_of_forest(
            [parse_tree("a"), parse_tree("a")]
        ) == 0
        assert automaton.accepts_forest([parse_tree("b"), parse_tree("b")])

    def test_unknown_label_rejected(self):
        automaton = MonoidForestAutomaton(
            z2(), {"a"}, {("a", 0): 1, ("a", 1): 0}, {0}
        )
        with pytest.raises(AutomatonError):
            automaton.value_of_tree(parse_tree("z"))

    def test_delta_must_be_total(self):
        with pytest.raises(AutomatonError):
            MonoidForestAutomaton(z2(), {"a"}, {("a", 0): 1}, {0})


class TestTransitionMonoid:
    def test_generators_compose_like_words(self):
        dfa = as_min_dfa("a, b").completed({"a", "b"})
        monoid, generators = transition_monoid_from_dfa(dfa)
        ab = monoid.add(generators["a"], generators["b"])
        # The element of 'ab' maps the initial state to an accepting state.
        states = sorted(dfa.states, key=repr)
        index = {s: i for i, s in enumerate(states)}
        assert states[ab[index[dfa.initial]]] in dfa.finals

    def test_identity_is_identity_function(self):
        dfa = as_min_dfa("a*").completed({"a"})
        monoid, _ = transition_monoid_from_dfa(dfa)
        assert monoid.identity == tuple(range(len(dfa.states)))


class TestChildLanguageAutomaton:
    def test_flat_forests(self):
        automaton = forest_automaton_for_child_language(
            as_min_dfa("a, b*"), {"a", "b"}
        )
        assert automaton.accepts_forest([parse_tree("a")])
        assert automaton.accepts_forest([parse_tree("a"), parse_tree("b")])
        assert not automaton.accepts_forest([parse_tree("b")])
        assert not automaton.accepts_forest([])

    def test_deep_trees_rejected(self):
        automaton = forest_automaton_for_child_language(
            as_min_dfa("a, b*"), {"a", "b"}
        )
        assert not automaton.accepts_forest([Tree("a", [Tree("b")])])

    def test_value_equivalence_substitution(self):
        """The Theorem 4.12 mechanism: forests with equal values can be
        substituted without changing acceptance."""
        automaton = forest_automaton_for_child_language(
            as_min_dfa("a, (b, b)*"), {"a", "b"}
        )
        f1 = [parse_tree("a")]
        f2 = [parse_tree("a"), parse_tree("b"), parse_tree("b")]
        assert automaton.value_of_forest(f1) == automaton.value_of_forest(f2)
        assert automaton.accepts_forest(f1) == automaton.accepts_forest(f2)
