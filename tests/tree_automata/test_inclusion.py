"""Tests for exact EDTD inclusion via binary encodings (Theorem 2.13's
problem, solved exactly)."""

from __future__ import annotations

import random

import pytest

from repro.families.hard import example_2_6
from repro.families.random_schemas import random_edtd
from repro.schemas.edtd import EDTD
from repro.schemas.ops import complement_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_difference_empty_reference,
    bta_from_edtd,
    edtd_equivalent,
    edtd_includes,
    edtd_universal,
    universal_edtd,
)
from repro.trees.encoding import encode
from repro.trees.generate import enumerate_all_trees


class TestBtaFromEdtd:
    def test_agrees_with_edtd_membership(self, ab_universe_4):
        edtd = example_2_6()
        bta = bta_from_edtd(edtd)
        for tree in ab_universe_4:
            assert bta.accepts(encode(tree)) == edtd.accepts(tree), tree

    def test_store_schema(self, store_schema):
        bta = bta_from_edtd(store_schema)
        from repro.trees.tree import parse_tree

        assert bta.accepts(encode(parse_tree("store(item(price), item(price))")))
        assert not bta.accepts(encode(parse_tree("store(item)")))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_edtds(self, seed):
        edtd = random_edtd(random.Random(seed), num_labels=2, num_types=4)
        bta = bta_from_edtd(edtd)
        for tree in enumerate_all_trees(edtd.alphabet, 4):
            assert bta.accepts(encode(tree)) == edtd.accepts(tree), (seed, tree)


class TestInclusion:
    def test_reflexive(self, store_schema):
        assert edtd_includes(store_schema, store_schema)

    def test_union_superset(self, ab_star_schema):
        # A schema with a different shape: root a with one a-leaf child.
        other = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "a"},
        )
        union = edtd_union(ab_star_schema, other)
        assert edtd_includes(union, ab_star_schema)
        assert edtd_includes(union, other)
        assert not edtd_includes(ab_star_schema, union)
        assert not edtd_includes(other, union)

    def test_agrees_with_bounded_enumeration(self, ab_universe_4):
        left = example_2_6()
        right = universal_edtd({"a", "b"})
        assert edtd_includes(right, left)
        assert not edtd_includes(left, right)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_inclusion_vs_enumeration(self, seed):
        rng = random.Random(200 + seed)
        left = random_edtd(rng, num_labels=2, num_types=3)
        right = random_edtd(rng, num_labels=2, num_types=3)
        exact = edtd_includes(right, left)
        universe = enumerate_all_trees(left.alphabet | right.alphabet, 4)
        bounded_counterexample = any(
            left.accepts(t) and not right.accepts(t) for t in universe
        )
        if bounded_counterexample:
            assert not exact, seed
        # (no assertion in the other direction: witnesses can be larger)


class TestWorklistDifferential:
    """The PR-2 worklist saturation with early exit must agree with the
    round-based reference on every instance."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_pairs(self, seed):
        rng = random.Random(500 + seed)
        left = bta_from_edtd(random_edtd(rng, num_labels=2, num_types=3))
        right = bta_from_edtd(random_edtd(rng, num_labels=2, num_types=3))
        assert bta_difference_empty(left, right) == (
            bta_difference_empty_reference(left, right)
        )
        assert bta_difference_empty(right, left) == (
            bta_difference_empty_reference(right, left)
        )

    def test_positive_and_negative_instances(self, store_schema, ab_star_schema):
        store = bta_from_edtd(store_schema)
        universal = bta_from_edtd(universal_edtd(store_schema.alphabet))
        assert bta_difference_empty(store, store)
        assert bta_difference_empty(store, universal)
        assert not bta_difference_empty(universal, store)
        other = bta_from_edtd(ab_star_schema)
        assert bta_difference_empty_reference(other, store) == (
            bta_difference_empty(other, store)
        )

    def test_early_exit_is_cheap_on_non_inclusion(self):
        # universal ⊄ example: a counterexample tree exists near the root,
        # so the worklist run finishes under a budget the reference's full
        # saturation could never respect.
        left = bta_from_edtd(universal_edtd({"a", "b"}))
        right = bta_from_edtd(example_2_6())
        from repro.runtime.budget import Budget

        assert not bta_difference_empty(left, right, budget=Budget(max_steps=5000))


class TestEquivalenceUniversality:
    def test_equivalent_reflexive(self, store_schema):
        assert edtd_equivalent(store_schema, store_schema.relabel_types())

    def test_not_equivalent(self, ab_star_schema, ab_pair_schema):
        assert not edtd_equivalent(ab_star_schema, ab_pair_schema)

    def test_universal_edtd_is_universal(self):
        assert edtd_universal(universal_edtd({"a", "b"}))

    def test_schema_union_complement_universal(self, ab_pair_schema):
        comp = complement_edtd(ab_pair_schema)
        assert edtd_universal(edtd_union(ab_pair_schema, comp))

    def test_non_universal(self, ab_star_schema):
        assert not edtd_universal(ab_star_schema)

    def test_empty_not_universal(self):
        empty = EDTD(alphabet={"a"}, types=set(), rules={}, starts=set(), mu={})
        assert not edtd_universal(empty)
