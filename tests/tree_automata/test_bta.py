"""Tests for binary tree automata: runs, determinization, boolean ops."""

from __future__ import annotations

import pytest

from repro.errors import AutomatonError
from repro.tree_automata.bta import BTA
from repro.trees.tree import Tree, parse_tree


def parity_bta() -> BTA:
    """Accepts binary {a}-trees with an even number of leaves."""
    return BTA(
        states={"even", "odd"},
        alphabet={"a"},
        leaf_rules={"a": {"odd"}},
        internal_rules={
            ("a", "even", "even"): {"even"},
            ("a", "odd", "odd"): {"even"},
            ("a", "even", "odd"): {"odd"},
            ("a", "odd", "even"): {"odd"},
        },
        finals={"even"},
    )


def binary_trees_up_to(n: int, label: str = "a") -> list[Tree]:
    by_size: dict[int, list[Tree]] = {1: [Tree(label)]}
    for size in range(2, n + 1):
        trees = []
        for left_size in range(1, size - 1):
            right_size = size - 1 - left_size
            if right_size < 1:
                continue
            for left in by_size.get(left_size, []):
                for right in by_size.get(right_size, []):
                    trees.append(Tree(label, [left, right]))
        by_size[size] = trees
    out: list[Tree] = []
    for size in range(1, n + 1):
        out.extend(by_size.get(size, []))
    return out


def leaf_count(tree: Tree) -> int:
    if not tree.children:
        return 1
    return sum(leaf_count(child) for child in tree.children)


class TestRuns:
    def test_parity_semantics(self):
        bta = parity_bta()
        for tree in binary_trees_up_to(9):
            assert bta.accepts(tree) == (leaf_count(tree) % 2 == 0), tree

    def test_non_binary_tree_rejected(self):
        with pytest.raises(AutomatonError):
            parity_bta().accepts(parse_tree("a(a)"))

    def test_unknown_leaf_label(self):
        bta = parity_bta()
        assert bta.possible_states(Tree("z")) == frozenset() if "z" in bta.alphabet else True

    def test_malformed_rules_rejected(self):
        with pytest.raises(AutomatonError):
            BTA({"q"}, {"a"}, {"a": {"zz"}}, {}, set())
        with pytest.raises(AutomatonError):
            BTA({"q"}, {"a"}, {}, {("a", "q", "zz"): {"q"}}, set())


class TestEmptiness:
    def test_nonempty(self):
        assert not parity_bta().is_empty_language()

    def test_empty(self):
        bta = BTA(
            states={"q"},
            alphabet={"a"},
            leaf_rules={},
            internal_rules={("a", "q", "q"): {"q"}},
            finals={"q"},
        )
        assert bta.is_empty_language()
        assert bta.witness_tree() is None

    def test_witness_is_member(self):
        witness = parity_bta().witness_tree()
        assert witness is not None
        assert parity_bta().accepts(witness)


class TestDeterminize:
    def test_preserves_language(self):
        bta = parity_bta()
        det = bta.determinize()
        for tree in binary_trees_up_to(9):
            assert det.accepts(tree) == bta.accepts(tree), tree

    def test_result_deterministic_complete(self):
        det = parity_bta().determinize()
        assert det.is_deterministic()

    def test_nondeterministic_input(self):
        # Accepts trees that have *some* leaf-only left spine — built
        # nondeterministically.
        bta = BTA(
            states={"q", "g"},
            alphabet={"a", "b"},
            leaf_rules={"a": {"q"}, "b": {"q", "g"}},
            internal_rules={
                ("a", "g", "q"): {"g"},
                ("a", "q", "q"): {"q"},
                ("b", "q", "q"): {"q"},
            },
            finals={"g"},
        )
        det = bta.determinize()
        assert det.is_deterministic()
        assert det.accepts(parse_tree("a(b, a)"))
        assert not det.accepts(parse_tree("a(a, b)"))


class TestBooleanOps:
    def test_complement(self):
        comp = parity_bta().complement()
        for tree in binary_trees_up_to(9):
            assert comp.accepts(tree) == (leaf_count(tree) % 2 == 1), tree

    def test_complement_involution_extensional(self):
        double = parity_bta().complement().complement()
        for tree in binary_trees_up_to(7):
            assert double.accepts(tree) == parity_bta().accepts(tree)

    def test_intersection(self):
        # Even number of leaves AND at least 3 nodes.
        small = BTA(
            states={"one", "big"},
            alphabet={"a"},
            leaf_rules={"a": {"one"}},
            internal_rules={
                ("a", s1, s2): {"big"}
                for s1 in ("one", "big")
                for s2 in ("one", "big")
            },
            finals={"big"},
        )
        inter = parity_bta().intersection(small)
        for tree in binary_trees_up_to(9):
            expected = (leaf_count(tree) % 2 == 0) and tree.size() >= 3
            assert inter.accepts(tree) == expected, tree
