"""Differential and regression tests for the tree-automata kernels (PR 7).

* bitmask BTA subset construction vs. the round-based reference —
  identical (not just isomorphic) automata on randomized BTAs, the
  theorem-3.2 blow-up family, and Example 2.6, under both the numpy and
  the scalar code paths;
* lazy-product difference-emptiness vs. the full-rescan reference;
* arena runs (``possible_states``, EDTD validation) vs. the recursive /
  path-dict references, including documents deeper than the recursion
  limit;
* budget-trip parity — kernel and reference trip at the same state
  counts — and kernel checkpoint resume across repeated interruptions;
* the memo caches — interning, recorded-cost budget recharging, and
  trip-on-hit for ``cached_bta_determinize`` / ``cached_bta_from_edtd``
  / the ``edtd_includes`` verdict cache / ``monoid_from_edtd``.
"""

from __future__ import annotations

import random

import pytest

import repro.tree_automata.kernels as kernels
from repro.errors import BudgetExceededError
from repro.families.hard import example_2_6, theorem_3_2_family
from repro.families.random_schemas import random_edtd
from repro.runtime.budget import Budget
from repro.tree_automata.bta import BTA
from repro.tree_automata.inclusion import (
    bta_difference_empty,
    bta_difference_empty_reference,
    bta_from_edtd,
    edtd_includes,
)
from repro.tree_automata.kernels import (
    bta_structural_key,
    cache_stats,
    cached_bta_determinize,
    cached_bta_from_edtd,
    clear_caches,
)
from repro.tree_automata.monoid import monoid_from_edtd
from repro.trees import Tree, leaf
from repro.trees.generate import sample_tree


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def random_bta(rng: random.Random, max_states: int = 7) -> BTA:
    """A small random BTA over a two- or three-letter alphabet."""
    num_states = rng.randint(1, max_states)
    states = [f"q{i}" for i in range(num_states)]
    labels = ["a", "b", "c"][: rng.choice([2, 2, 3])]
    leaf_rules: dict = {}
    for label in labels:
        targets = {q for q in states if rng.random() < 0.4}
        if targets:
            leaf_rules[label] = targets
    internal: dict = {}
    for label in labels:
        for q1 in states:
            for q2 in states:
                if rng.random() < 0.25:
                    targets = {
                        rng.choice(states)
                        for _ in range(rng.randint(1, min(3, num_states)))
                    }
                    internal[(label, q1, q2)] = targets
    finals = {q for q in states if rng.random() < 0.4} or {rng.choice(states)}
    return BTA(states, labels, leaf_rules, internal, finals)


def random_binary_tree(rng: random.Random, labels: str = "abc", size: int = 21) -> Tree:
    """A random binary tree (every node has zero or two children)."""
    tree = leaf(rng.choice(labels))
    for _ in range(size // 2):
        tree = Tree(
            rng.choice(labels),
            [tree, leaf(rng.choice(labels))]
            if rng.random() < 0.5
            else [leaf(rng.choice(labels)), tree],
        )
    return tree


def spine_bta(k: int) -> BTA:
    """The 'k-th left-spine label from the bottom is b' BTA: determinizing
    it reaches ~2**k subsets (a string-NFA blow-up lifted onto the left
    spine of binary combs), so budgets have room to trip."""
    states = [f"q{i}" for i in range(k + 1)] + ["pad"]
    leaf_rules = {"a": {"q0"}, "b": {"q0", "q1"}, "p": {"pad"}}
    internal: dict = {}
    for label in ("a", "b"):
        for i in range(k):
            targets = {"q0", "q1"} if label == "b" else {"q0"}
            if i > 0:
                targets = targets | {f"q{i + 1}"}
            internal[(label, f"q{i}", "pad")] = targets
    return BTA(states, ["a", "b", "p"], leaf_rules, internal, {f"q{k}"})


def assert_same_bta(left: BTA, right: BTA) -> None:
    """Kernel results keep the exact frozenset subset states of the
    reference, so differential results must be *equal*, not isomorphic."""
    assert left.states == right.states
    assert left.alphabet == right.alphabet
    assert left.finals == right.finals
    assert {k: frozenset(v) for k, v in left.leaf_rules.items()} == {
        k: frozenset(v) for k, v in right.leaf_rules.items()
    }
    assert {k: frozenset(v) for k, v in left.internal_rules.items()} == {
        k: frozenset(v) for k, v in right.internal_rules.items()
    }


class TestDeterminizeDifferential:
    def test_randomized_btas(self, monkeypatch):
        rng = random.Random(20260808)
        for case in range(80):
            bta = random_bta(rng)
            monkeypatch.setattr(kernels, "USE_FAST_PATH", case % 2 == 0)
            assert_same_bta(bta.determinize(), bta.determinize_reference())

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_blowup_family(self, n):
        bta = bta_from_edtd(theorem_3_2_family(n))
        assert_same_bta(bta.determinize(), bta.determinize_reference())

    def test_example_2_6(self):
        bta = bta_from_edtd(example_2_6())
        det = bta.determinize()
        assert_same_bta(det, bta.determinize_reference())
        assert det.is_deterministic()

    def test_scalar_and_fast_paths_agree(self, monkeypatch):
        bta = spine_bta(5)
        monkeypatch.setattr(kernels, "USE_FAST_PATH", False)
        scalar = bta.determinize()
        monkeypatch.setattr(kernels, "USE_FAST_PATH", True)
        assert_same_bta(bta.determinize(), scalar)

    def test_governed_run_matches_ungoverned(self):
        bta = spine_bta(5)
        assert_same_bta(bta.determinize(budget=Budget()), bta.determinize())

    def test_degenerate_automata(self):
        no_rules = BTA(["q"], ["a"], {}, {}, ["q"])
        assert_same_bta(no_rules.determinize(), no_rules.determinize_reference())
        leaf_only = BTA(["q"], ["a"], {"a": {"q"}}, {}, ["q"])
        assert_same_bta(leaf_only.determinize(), leaf_only.determinize_reference())


class TestDifferenceEmptyDifferential:
    def test_randomized_pairs(self):
        rng = random.Random(404)
        for _ in range(60):
            left, right = random_bta(rng), random_bta(rng)
            assert bta_difference_empty(left, right) == bta_difference_empty_reference(
                left, right
            )

    def test_self_inclusion_always_holds(self):
        rng = random.Random(405)
        for _ in range(20):
            bta = random_bta(rng)
            assert bta_difference_empty(bta, bta)

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_blowup_family_pairs(self, n):
        smaller = bta_from_edtd(theorem_3_2_family(n))
        larger = bta_from_edtd(theorem_3_2_family(n + 1))
        for left, right in [(smaller, larger), (larger, smaller), (smaller, smaller)]:
            assert bta_difference_empty(left, right) == bta_difference_empty_reference(
                left, right
            )

    def test_early_counterexample_beats_tiny_budget(self):
        # L(spine(8)) is nonempty while the second automaton is empty: a
        # counterexample pair surfaces long before the full product.
        left = spine_bta(8)
        empty = BTA(["q"], ["a", "b", "p"], {}, {}, ["q"])
        assert not bta_difference_empty(left, empty, budget=Budget(max_states=10))

    def test_budget_trips_on_positive_instances(self):
        bta = spine_bta(8)
        with pytest.raises(BudgetExceededError):
            bta_difference_empty(bta, bta, budget=Budget(max_states=10))


class TestArenaRuns:
    def test_possible_states_random(self):
        rng = random.Random(777)
        for _ in range(60):
            bta = random_bta(rng)
            tree = random_binary_tree(rng)
            assert bta.possible_states(tree) == bta.possible_states_reference(tree)

    def test_accepts_agrees_with_reference_run(self):
        rng = random.Random(778)
        for _ in range(40):
            bta = random_bta(rng)
            tree = random_binary_tree(rng)
            reference = bool(bta.possible_states_reference(tree) & bta.finals)
            assert bta.accepts(tree) == reference

    def test_deep_comb_does_not_recurse(self):
        depth = 3000
        tree = leaf("a")
        for _ in range(depth):
            tree = Tree("a", [tree, leaf("p")])
        bta = spine_bta(4)
        with pytest.raises(RecursionError):
            bta.possible_states_reference(tree)
        states = bta.possible_states(tree)
        assert "q0" in states

    def test_non_binary_trees_are_rejected(self):
        bta = spine_bta(3)
        with pytest.raises(Exception):
            bta.possible_states(Tree("a", [leaf("a")]))


class TestEDTDValidation:
    def test_possible_types_random_schemas(self):
        rng = random.Random(1234)
        for _ in range(25):
            schema = random_edtd(rng)
            for _ in range(4):
                tree = sample_tree(schema, rng, target_size=25)
                assert schema.possible_types(tree) == schema.possible_types_reference(
                    tree
                )
                assert schema.accepts(tree)

    def test_rejections_agree(self):
        rng = random.Random(1235)
        for _ in range(25):
            schema = random_edtd(rng)
            tree = sample_tree(schema, rng, target_size=25)
            # Relabel one node; the mutants exercise the rejecting paths.
            paths = [path for path, _ in tree.nodes()]
            victim = rng.choice(paths)
            mutant = tree.replace_at(
                victim, Tree(rng.choice(sorted(schema.alphabet, key=repr)))
            )
            assert schema.possible_types(mutant) == schema.possible_types_reference(
                mutant
            )
            reference_accepts = bool(
                schema.starts & schema.possible_types_reference(mutant)
            )
            assert schema.accepts(mutant) == reference_accepts

    def test_deep_document_validation(self):
        # Both sides are iterative; they must agree on documents far
        # deeper than the recursion limit.
        schema = theorem_3_2_family(2)
        label = next(iter(schema.mu.values()))
        deep = Tree(label)
        for _ in range(3000):
            deep = Tree(label, [deep])
        assert schema.possible_types(deep) == schema.possible_types_reference(deep)


class TestBudgetTripParity:
    def test_determinize_trips_at_same_state_counts(self):
        bta = spine_bta(7)
        for limit in [1, 7, 40, 100]:
            with pytest.raises(BudgetExceededError) as fast:
                bta.determinize(budget=Budget(max_states=limit))
            with pytest.raises(BudgetExceededError) as slow:
                bta.determinize_reference(budget=Budget(max_states=limit))
            assert fast.value.reason == slow.value.reason == "max-states"
            assert (
                fast.value.progress.states_explored
                == slow.value.progress.states_explored
                == limit + 1
            )

    def test_kernel_trip_carries_checkpoint(self):
        bta = spine_bta(7)
        with pytest.raises(BudgetExceededError) as info:
            bta.determinize(budget=Budget(max_states=40))
        checkpoint = info.value.checkpoint
        assert checkpoint is not None
        # 41 charged subsets plus the three uncharged leaf-seed subsets.
        assert checkpoint.states_explored == 41 + 3
        assert checkpoint.frontier_size > 0


class TestCheckpointResume:
    def test_kernel_resumes_own_checkpoint(self):
        bta = spine_bta(7)
        full = bta.determinize()
        with pytest.raises(BudgetExceededError) as info:
            bta.determinize(budget=Budget(max_states=40))
        resumed = bta.determinize(checkpoint=info.value.checkpoint)
        assert_same_bta(resumed, full)

    def test_resume_across_multiple_interruptions(self):
        bta = spine_bta(7)
        full = bta.determinize()
        checkpoint = None
        for _ in range(300):
            try:
                resumed = bta.determinize(
                    budget=Budget(max_states=24), checkpoint=checkpoint
                )
                break
            except BudgetExceededError as error:
                assert error.checkpoint is not None
                checkpoint = error.checkpoint
        else:
            pytest.fail("construction never completed")
        assert_same_bta(resumed, full)

    def test_resumed_run_is_governed_not_fast(self):
        # checkpoint= forces the scalar worklist even when numpy is
        # available; the result must still be exact.
        bta = spine_bta(6)
        with pytest.raises(BudgetExceededError) as info:
            bta.determinize(budget=Budget(max_states=5))
        resumed = bta.determinize(
            budget=Budget(), checkpoint=info.value.checkpoint
        )
        assert_same_bta(resumed, bta.determinize_reference())


class TestMemoCaches:
    def test_cached_determinize_interns_structural_equals(self):
        first = cached_bta_determinize(spine_bta(4))
        before = cache_stats()["bta_determinize"]
        second = cached_bta_determinize(spine_bta(4))
        after = cache_stats()["bta_determinize"]
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_structural_key_separates_distinct_automata(self):
        assert bta_structural_key(spine_bta(4)) == bta_structural_key(spine_bta(4))
        assert bta_structural_key(spine_bta(4)) != bta_structural_key(spine_bta(5))

    def test_hit_recharges_recorded_cost(self):
        cold = Budget()
        cached_bta_determinize(spine_bta(5), budget=cold)
        warm = Budget()
        cached_bta_determinize(spine_bta(5), budget=warm)
        assert cold.states > 0
        assert (warm.states, warm.steps) == (cold.states, cold.steps)

    def test_hit_still_trips_tight_budget(self):
        cached_bta_determinize(spine_bta(5))
        with pytest.raises(BudgetExceededError):
            cached_bta_determinize(spine_bta(5), budget=Budget(max_states=2))

    def test_uncacheable_btas_still_work(self):
        class Odd:
            def __repr__(self):
                return "odd"

        x, y = Odd(), Odd()
        bta = BTA(
            [0, 1],
            [x, y],
            {x: {0}, y: {0}},
            {(x, 0, 0): {1}},
            [1],
        )
        assert bta_structural_key(bta) is None
        det = cached_bta_determinize(bta)
        assert_same_bta(det, bta.determinize_reference())

    def test_cached_bta_from_edtd_interns_by_schema(self):
        first = cached_bta_from_edtd(example_2_6())
        before = cache_stats()["bta_from_edtd"]
        second = cached_bta_from_edtd(example_2_6())
        after = cache_stats()["bta_from_edtd"]
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert_same_bta(first, bta_from_edtd(example_2_6()))

    def test_edtd_includes_verdict_is_cached(self):
        schema = example_2_6()
        verdict = edtd_includes(schema, schema)
        assert verdict is True
        before = cache_stats()["bta_inclusion"]
        assert edtd_includes(schema, schema) is True
        after = cache_stats()["bta_inclusion"]
        assert after["hits"] == before["hits"] + 1

    def test_clear_caches_resets_counters(self):
        cached_bta_determinize(spine_bta(4))
        cached_bta_determinize(spine_bta(4))
        clear_caches()
        stats = cache_stats()["bta_determinize"]
        assert stats["hits"] == stats["misses"] == stats["entries"] == 0


class TestMonoidFromEDTD:
    def test_generators_cover_every_type(self):
        schema = example_2_6()
        monoid, generators = monoid_from_edtd(schema)
        assert set(generators) == set(schema.types)
        for element in generators.values():
            assert element in monoid.elements

    def test_equal_elements_act_equally_on_every_content_model(self):
        rng = random.Random(55)
        schema = example_2_6()
        monoid, generators = monoid_from_edtd(schema)
        types = sorted(schema.types, key=repr)

        def element_of(word):
            value = monoid.identity
            for type_ in word:
                value = monoid.add(value, generators[type_])
            return value

        def run(word, type_):
            dfa = schema.rules[type_]
            state = dfa.initial
            for symbol in word:
                if state is None:
                    return None
                state = dfa.successor(state, symbol)
            return state

        words = [
            tuple(rng.choice(types) for _ in range(rng.randint(0, 4)))
            for _ in range(40)
        ]
        for one in words:
            for other in words:
                if element_of(one) == element_of(other):
                    for type_ in types:
                        assert run(one, type_) == run(other, type_)

    def test_memoized_with_recharge(self):
        schema = example_2_6()
        cold = Budget()
        first, _ = monoid_from_edtd(schema, budget=cold)
        before = cache_stats()["edtd_monoid"]
        warm = Budget()
        second, _ = monoid_from_edtd(schema, budget=warm)
        after = cache_stats()["edtd_monoid"]
        assert second is first
        assert after["hits"] == before["hits"] + 1
        assert (warm.states, warm.steps) == (cold.states, cold.steps)
