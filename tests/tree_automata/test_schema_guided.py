"""Differential harness for the schema-guided BTA determinization.

Mirrors ``tests/strings/test_schema_guided.py`` on the tree side:
language equivalence relative to the guide (exact, via the emptiness
procedure on product automata), state-for-state agreement under the
universal guide, widening monotonicity, a brute-force reachability
oracle for pruned subsets, budget/checkpoint contract parity with the
blind worklist, and memo-cache identity.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AutomatonError, BudgetExceededError
from repro.families.hard import example_2_6, theorem_3_2_family
from repro.runtime.budget import Budget
from repro.schemas.ops import edtd_union
from repro.trees.tree import Tree
from repro.tree_automata.bta import BTA
from repro.tree_automata.inclusion import bta_difference_empty, bta_from_edtd
from repro.tree_automata.kernels import BTADetCheckpoint
from repro.tree_automata.schema_guided import (
    GuidedBTADetCheckpoint,
    bta_guide_from_edtd,
    cache_stats,
    cached_bta_determinize_guided,
    clear_caches,
    universal_bta_guide,
)
from tests.strategies import examples, single_type_edtds

# ----------------------------------------------------------------------
# Brute-force tree universes (reachability oracle)
# ----------------------------------------------------------------------

_BINARY_TREES: dict[frozenset, list[Tree]] = {}


def _binary_trees(alphabet, max_size: int = 5) -> list[Tree]:
    """All binary-shaped trees (0 or 2 children) over *alphabet* with at
    most *max_size* nodes, memoized per alphabet."""
    key = frozenset(alphabet)
    cached = _BINARY_TREES.get(key)
    if cached is not None:
        return cached
    labels = sorted(alphabet, key=repr)
    by_size: dict[int, list[Tree]] = {1: [Tree(label) for label in labels]}
    for size in range(3, max_size + 1, 2):
        layer: list[Tree] = []
        for left_size in range(1, size - 1, 2):
            right_size = size - 1 - left_size
            for left in by_size[left_size]:
                for right in by_size.get(right_size, ()):
                    layer.extend(Tree(label, [left, right]) for label in labels)
        by_size[size] = layer
    out = [tree for sized in by_size.values() for tree in sized]
    _BINARY_TREES[key] = out
    return out


def _pick_guide(d1, d2, kind) -> BTA:
    if kind == "universal":
        return universal_bta_guide(bta_from_edtd(d1).alphabet)
    if kind == "own":
        return bta_guide_from_edtd(d1)
    return bta_guide_from_edtd(d2)


GUIDE_KINDS = st.sampled_from(["universal", "own", "other"])


# ----------------------------------------------------------------------
# Differential: language equivalence on the guide's universe
# ----------------------------------------------------------------------

@settings(max_examples=examples(200), deadline=None)
@given(single_type_edtds(max_types=3), single_type_edtds(max_types=3), GUIDE_KINDS)
def test_guided_equals_blind_on_guide_language(d1, d2, kind):
    bta = bta_from_edtd(d1)
    guide = _pick_guide(d1, d2, kind)
    guided = bta.determinize(strategy="schema-guided", guide=guide)
    blind = bta.determinize()

    # Pruning only ever removes behaviour: L(guided) ⊆ L(blind) ⊆ L(bta).
    assert bta_difference_empty(guided, blind)

    # On the guide's universe the kernels agree exactly.
    assert bta_difference_empty(guided.intersection(guide), blind.intersection(guide))
    assert bta_difference_empty(blind.intersection(guide), guided.intersection(guide))


@settings(max_examples=examples(60), deadline=None)
@given(single_type_edtds(max_types=3))
def test_universal_guide_matches_blind_state_for_state(edtd):
    bta = bta_from_edtd(edtd)
    guided = bta.determinize(strategy="schema-guided")
    blind = bta.determinize()
    assert set(guided.states) == set(blind.states)
    assert guided.leaf_rules == blind.leaf_rules
    assert guided.internal_rules == blind.internal_rules
    assert set(guided.finals) == set(blind.finals)


# ----------------------------------------------------------------------
# Metamorphic: widening the guide never shrinks the explored set
# ----------------------------------------------------------------------

@settings(max_examples=examples(40), deadline=None)
@given(single_type_edtds(max_types=3), single_type_edtds(max_types=3))
def test_widening_guide_never_shrinks_states(d1, d2):
    bta = bta_from_edtd(d1)
    own = bta.determinize(strategy="schema-guided", guide=bta_guide_from_edtd(d1))
    wider = bta.determinize(
        strategy="schema-guided", guide=bta_guide_from_edtd(edtd_union(d1, d2))
    )
    blind = bta.determinize()
    assert set(own.states) <= set(wider.states) <= set(blind.states)


@settings(max_examples=examples(25), deadline=None)
@given(single_type_edtds(max_types=2))
def test_pruned_subsets_unreachable_by_guide_accepted_trees(edtd):
    """Reachability oracle: for every small tree the guide accepts, the
    blind determinization's state at every subtree position must have
    survived the pruning."""
    bta = bta_from_edtd(edtd)
    guide = bta_guide_from_edtd(edtd)
    guided = bta.determinize(strategy="schema-guided", guide=guide)
    blind = bta.determinize()
    kept = set(guided.states)

    def subtrees(tree):
        yield tree
        for child in tree.children:
            yield from subtrees(child)

    for tree in _binary_trees(bta.alphabet):
        if not guide.accepts(tree):
            continue
        for sub in subtrees(tree):
            states = blind.possible_states(sub)
            for subset in states:
                assert subset in kept, (tree, sub, subset)


# ----------------------------------------------------------------------
# Governance: budgets, checkpoints, resume
# ----------------------------------------------------------------------

def _trip_ladder(bta, *, strategy, guide=None, start=2, step=2):
    trips = 0
    seen: list[type] = []
    checkpoint = None
    limit = start
    while True:
        try:
            det = bta.determinize(
                budget=Budget(max_states=limit),
                checkpoint=checkpoint,
                strategy=strategy,
                guide=guide,
            )
            return trips, seen, det
        except BudgetExceededError as error:
            trips += 1
            assert error.checkpoint is not None
            seen.append(type(error.checkpoint))
            checkpoint = error.checkpoint
            limit += step
            assert trips < 100


def test_budget_trip_counts_match_blind_contract():
    bta = bta_from_edtd(theorem_3_2_family(3))
    blind_trips, blind_types, blind_det = _trip_ladder(bta, strategy="blind")
    guided_trips, guided_types, guided_det = _trip_ladder(bta, strategy="schema-guided")
    assert guided_trips == blind_trips > 0
    assert all(t is BTADetCheckpoint for t in blind_types)
    assert all(t is GuidedBTADetCheckpoint for t in guided_types)
    assert set(guided_det.states) == set(blind_det.states)
    assert guided_det.internal_rules == blind_det.internal_rules


def test_charge_parity_with_blind_under_universal_guide():
    bta = bta_from_edtd(example_2_6())
    blind_budget = Budget()
    bta.determinize(budget=blind_budget)
    guided_budget = Budget()
    bta.determinize(budget=guided_budget, strategy="schema-guided")
    assert guided_budget.states == blind_budget.states
    assert guided_budget.steps == blind_budget.steps


def test_checkpoint_resume_equals_uninterrupted():
    bta = bta_from_edtd(theorem_3_2_family(3))
    guide = bta_guide_from_edtd(theorem_3_2_family(3))
    whole = bta.determinize(strategy="schema-guided", guide=guide)
    trips, types, resumed = _trip_ladder(bta, strategy="schema-guided", guide=guide)
    assert trips > 0 and all(t is GuidedBTADetCheckpoint for t in types)
    assert set(resumed.states) == set(whole.states)
    assert resumed.leaf_rules == whole.leaf_rules
    assert resumed.internal_rules == whole.internal_rules
    assert set(resumed.finals) == set(whole.finals)


def test_strategy_validation():
    bta = bta_from_edtd(example_2_6())
    with pytest.raises(AutomatonError):
        bta.determinize(strategy="unknown")
    with pytest.raises(AutomatonError):
        bta.determinize(strategy="blind", guide=universal_bta_guide(bta.alphabet))
    with pytest.raises(BudgetExceededError) as trip:
        bta.determinize(strategy="schema-guided", budget=Budget(max_states=1))
    with pytest.raises(AutomatonError):
        bta.determinize(strategy="blind", checkpoint=trip.value.checkpoint)
    # A nondeterministic guide is rejected up front.
    with pytest.raises(AutomatonError):
        bta.determinize(strategy="schema-guided", guide=bta)


# ----------------------------------------------------------------------
# Memo cache: hits return the identical artifact
# ----------------------------------------------------------------------

def test_memo_cache_hit_returns_identical_artifact():
    clear_caches()
    bta = bta_from_edtd(example_2_6())
    guide = bta_guide_from_edtd(example_2_6())
    first = cached_bta_determinize_guided(bta, guide)
    second = cached_bta_determinize_guided(bta, guide)
    assert second is first
    stats = cache_stats()["schema_guided_bta_det"]
    assert stats["hits"] >= 1

    # A different guide keys a different entry.
    other = cached_bta_determinize_guided(bta, universal_bta_guide(bta.alphabet))
    assert other is not first
    direct = bta.determinize(strategy="schema-guided", guide=guide)
    assert set(direct.states) == set(first.states)
    assert direct.internal_rules == first.internal_rules
