"""Shared Hypothesis strategies for the test suite.

One home for the generators that used to live per-suite (random regexes,
layered single-type EDTDs, tree/XML fuzz soup), plus the schema-guided
determinization pairs used by the differential harness.

Size profiles
-------------
``REPRO_HYPOTHESIS_PROFILE`` selects how many examples property tests
draw:

* ``smoke`` (default) — CI-sized counts, identical to the historical
  per-suite numbers;
* ``nightly`` — 5x the smoke counts for deeper soak runs.

Suites call :func:`examples` with their smoke-sized count::

    @settings(max_examples=examples(60), deadline=None)
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.schemas.st_edtd import SingleTypeEDTD
from repro.strings.determinize import determinize
from repro.strings.dfa import DFA
from repro.strings.glushkov import glushkov_nfa
from repro.strings.minimize import minimize_dfa
from repro.strings.nfa import NFA
from repro.strings.regex import (
    EMPTY,
    EPSILON,
    Concat,
    Opt,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    union,
)
from repro.strings.schema_guided import depth_guide, universal_guide
from repro.trees.tree import Tree

# ----------------------------------------------------------------------
# Size profiles
# ----------------------------------------------------------------------

_PROFILES = {"smoke": 1, "nightly": 5}

PROFILE = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "smoke")
if PROFILE not in _PROFILES:
    raise ValueError(
        f"REPRO_HYPOTHESIS_PROFILE={PROFILE!r}: expected one of {sorted(_PROFILES)}"
    )


def examples(smoke_count: int) -> int:
    """Scale a smoke-profile ``max_examples`` count to the active profile."""
    return smoke_count * _PROFILES[PROFILE]


# ----------------------------------------------------------------------
# String substrate: regexes over {a, b} and brute-force word oracles
# ----------------------------------------------------------------------

ALPHABET = ["a", "b"]


def regexes(max_depth: int = 4) -> st.SearchStrategy[Regex]:
    atoms = st.sampled_from(
        [Sym("a"), Sym("b"), EPSILON, EMPTY]
    )
    return st.recursive(
        atoms,
        lambda inner: st.one_of(
            st.builds(Concat, inner, inner),
            st.builds(Union, inner, inner),
            st.builds(Star, inner),
            st.builds(Plus, inner),
            st.builds(Opt, inner),
        ),
        max_leaves=8,
    )


def words_up_to(n: int) -> list[tuple]:
    out = [()]
    frontier = [()]
    for _ in range(n):
        frontier = [w + (c,) for w in frontier for c in ALPHABET]
        out.extend(frontier)
    return out


ALL_WORDS_4 = words_up_to(4)


def ast_matches(expr: Regex, word: tuple) -> bool:
    """Brute-force membership via the AST (exponential, for tiny words)."""
    if isinstance(expr, Sym):
        return word == (expr.symbol,)
    if expr == EPSILON:
        return word == ()
    if expr == EMPTY:
        return False
    if isinstance(expr, Union):
        return ast_matches(expr.left, word) or ast_matches(expr.right, word)
    if isinstance(expr, Concat):
        return any(
            ast_matches(expr.left, word[:i]) and ast_matches(expr.right, word[i:])
            for i in range(len(word) + 1)
        )
    if isinstance(expr, Opt):
        return word == () or ast_matches(expr.child, word)
    if isinstance(expr, (Star, Plus)):
        if word == ():
            return isinstance(expr, Star) or expr.nullable()
        return any(
            i > 0
            and ast_matches(expr.child, word[:i])
            and ast_matches(Star(expr.child), word[i:])
            for i in range(1, len(word) + 1)
        )
    raise TypeError(expr)


def glushkov_nfas(max_depth: int = 4) -> st.SearchStrategy[NFA]:
    """Glushkov NFAs of random regexes — subset-construction inputs."""
    return regexes(max_depth).map(glushkov_nfa)


# ----------------------------------------------------------------------
# Guides for schema-guided determinization
# ----------------------------------------------------------------------

@st.composite
def string_guides(draw) -> DFA:
    """A guide DFA over {a, b}: universal, depth-bounded, or the minimal
    DFA of a random regex (exercising the reachable-and-coreachable alive
    set, including empty-language guides)."""
    kind = draw(st.sampled_from(["universal", "depth", "regex"]))
    if kind == "universal":
        return universal_guide(set(ALPHABET))
    if kind == "depth":
        return depth_guide(set(ALPHABET), draw(st.integers(min_value=0, max_value=4)))
    expr = draw(regexes(max_depth=3))
    return minimize_dfa(determinize(glushkov_nfa(expr))).completed(ALPHABET)


@st.composite
def nfa_guide_pairs(draw) -> tuple[NFA, DFA]:
    """(automaton, schema-guide) pairs for the differential harness."""
    return draw(glushkov_nfas()), draw(string_guides())


# ----------------------------------------------------------------------
# Layered single-type EDTDs over a 3-letter alphabet
# ----------------------------------------------------------------------

LABELS = ["a", "b", "c"]


@st.composite
def single_type_edtds(draw, max_types: int = 5) -> SingleTypeEDTD:
    """Layered single-type EDTDs over a 3-letter alphabet.

    Types are layered t0 > t1 > ... (acyclic), each content model uses at
    most one later type per label (EDC by construction), optionally with a
    recursive self-edge.
    """
    num_types = draw(st.integers(min_value=1, max_value=max_types))
    types = [f"t{i}" for i in range(num_types)]
    mu = {t: LABELS[i % len(LABELS)] for i, t in enumerate(types)}
    rules: dict = {}
    for index, type_ in enumerate(types):
        later = types[index + 1:]
        candidates: dict[str, str] = {}
        for other in later:
            candidates.setdefault(mu[other], other)
        if draw(st.booleans()):
            candidates[mu[type_]] = type_  # self-recursion
        chosen = draw(
            st.lists(
                st.sampled_from(sorted(candidates.values())) if candidates else st.nothing(),
                max_size=3,
            )
        ) if candidates else []
        parts: list[Regex] = []
        for child in chosen:
            modifier = draw(st.sampled_from(["plain", "star", "plus", "opt"]))
            atom: Regex = Sym(child)
            if modifier == "star":
                atom = Star(atom)
            elif modifier == "plus":
                atom = Plus(atom)
            elif modifier == "opt":
                atom = Opt(atom)
            parts.append(atom)
        expr = concat(*parts) if parts else EPSILON
        if draw(st.booleans()):
            expr = union(expr, EPSILON)
        rules[type_] = expr
    schema = SingleTypeEDTD(
        alphabet=set(LABELS),
        types=set(types),
        rules=rules,
        starts={types[0]},
        mu=mu,
    ).reduced()
    if not schema.types:
        schema = SingleTypeEDTD(
            alphabet=set(LABELS),
            types={"t0"},
            rules={"t0": "~"},
            starts={"t0"},
            mu={"t0": LABELS[0]},
        )
    return schema


# ----------------------------------------------------------------------
# Trees and hostile XML soup
# ----------------------------------------------------------------------

tree_labels = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.\-]{0,8}", fullmatch=True)

trees = st.recursive(
    tree_labels.map(Tree),
    lambda children: st.tuples(tree_labels, st.lists(children, max_size=4)).map(
        lambda pair: Tree(pair[0], pair[1])
    ),
    max_leaves=25,
)

# Hostile soup: markup shards that tend to reach deep into the tokenizer.
_SHARDS = st.sampled_from(
    [
        "<", ">", "</", "/>", "<a>", "</a>", "<a/>", "<!DOCTYPE x>", "<!ENTITY",
        "<!--", "-->", "<?xml?>", "&amp;", "&lol9;", "&#x0;", "]]>", "<![CDATA[",
        "a", " ", "\n", "\t", '"', "'", "=", "\x00", "﻿", "é", "𝄞",
    ]
)
hostile_documents = st.one_of(
    st.text(max_size=120),
    st.lists(_SHARDS, max_size=30).map("".join),
    st.binary(max_size=120).map(lambda b: b.decode("latin-1")),
)
