"""Shared fixtures: canonical schemas and bounded tree universes."""

from __future__ import annotations

import random

import pytest

from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import enumerate_all_trees


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def store_schema() -> SingleTypeEDTD:
    """store(item(price)*) — a small but non-trivial stEDTD."""
    return SingleTypeEDTD(
        alphabet={"store", "item", "price"},
        types={"s", "i", "p"},
        rules={"s": "i*", "i": "p", "p": "~"},
        starts={"s"},
        mu={"s": "store", "i": "item", "p": "price"},
    )


@pytest.fixture
def ab_star_schema() -> SingleTypeEDTD:
    """a-root with b* children."""
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"ra", "tb"},
        rules={"ra": "tb*", "tb": "~"},
        starts={"ra"},
        mu={"ra": "a", "tb": "b"},
    )


@pytest.fixture
def ab_pair_schema() -> SingleTypeEDTD:
    """a-root with exactly two b children."""
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"ra", "tb"},
        rules={"ra": "tb, tb", "tb": "~"},
        starts={"ra"},
        mu={"ra": "a", "tb": "b"},
    )


@pytest.fixture(scope="session")
def ab_universe_4():
    """All {a,b}-trees with at most 4 nodes (102 trees)."""
    return enumerate_all_trees({"a", "b"}, 4)


@pytest.fixture(scope="session")
def ab_universe_5():
    """All {a,b}-trees with at most 5 nodes (550 trees)."""
    return enumerate_all_trees({"a", "b"}, 5)


@pytest.fixture(scope="session")
def a_universe_5():
    """All {a}-trees with at most 5 nodes."""
    return enumerate_all_trees({"a"}, 5)
