"""`ValidationService`: async operations, three-valued degradation under
per-request budgets, and the TCP wire loop end to end."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api import Settings
from repro.errors import ServiceError
from repro.families.hard import example_2_6
from repro.schemas.text_format import dumps
from repro.service import ValidationService

AB_TEXT = dumps(example_2_6())
VALID_DOC = "<a><b/></a>"
INVALID_DOC = "<b><a/></b>"


def run(coro):
    return asyncio.run(coro)


class TestOperations:
    def test_register_then_validate(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            assert info["types"] == len(example_2_6().types)
            valid = await service.validate(info["schema_id"], VALID_DOC)
            invalid = await service.validate(info["schema_id"], INVALID_DOC)
            return valid, invalid

        valid, invalid = run(scenario())
        assert valid["verdict"] == "valid" and valid["valid"] is True
        assert invalid["verdict"] == "invalid" and invalid["valid"] is False
        assert valid["steps"] >= 2  # one budget step per document node

    def test_register_is_idempotent(self):
        async def scenario():
            service = ValidationService(capacity=4)
            first = await service.register_schema(AB_TEXT)
            second = await service.register_schema(AB_TEXT)
            return first, second, service.registry.stats()

        first, second, stats = run(scenario())
        assert first["schema_id"] == second["schema_id"]
        assert stats["compiles"] == 1

    def test_unknown_schema_id_raises(self):
        service = ValidationService(capacity=4)
        with pytest.raises(ServiceError, match="unknown schema_id"):
            run(service.validate("no-such-id", VALID_DOC))

    def test_approximate_upper(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            return await service.approximate(info["schema_id"], direction="upper")

        result = run(scenario())
        assert result["direction"] == "upper"
        assert result["types"] >= 1
        assert "alphabet" in result["schema"] or result["schema"]

    def test_approximate_rejects_bad_direction(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            await service.approximate(info["schema_id"], direction="sideways")

        with pytest.raises(ServiceError, match="direction"):
            run(scenario())

    def test_service_settings_fill_budget_gaps(self):
        async def scenario():
            service = ValidationService(capacity=4, settings=Settings(max_steps=1))
            info = await service.register_schema(AB_TEXT)
            return await service.validate(info["schema_id"], VALID_DOC)

        row = run(scenario())
        assert row["verdict"] == "unknown"
        assert row["error"]["reason"] == "max-steps"


class TestThreeValuedDegradation:
    def test_validate_unknown_on_trip(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            return await service.validate(info["schema_id"], VALID_DOC, max_steps=1)

        row = run(scenario())
        assert row["verdict"] == "unknown"
        assert row["valid"] is None
        assert row["error"]["type"] == "BudgetExceededError"
        assert row["error"]["reason"] == "max-steps"

    def test_batch_partial_prefix_mid_trip(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            # Each document charges 2 steps; 5 steps complete two whole
            # documents and trip deterministically inside the third.
            return await service.validate_batch(
                info["schema_id"], [VALID_DOC] * 4, max_steps=5
            )

        batch = run(scenario())
        assert [row["verdict"] for row in batch["results"]] == [
            "valid",
            "valid",
            "unknown",
        ]
        assert batch["completed"] == 3
        assert batch["total"] == 4
        assert batch["partial"] is True
        assert batch["error"]["reason"] == "max-steps"

    def test_batch_completes_within_budget(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            return await service.validate_batch(
                info["schema_id"], [VALID_DOC, INVALID_DOC], max_steps=100
            )

        batch = run(scenario())
        assert batch["partial"] is False
        assert batch["completed"] == batch["total"] == 2
        assert "error" not in batch


class TestWireBoundary:
    def test_handle_request_maps_taxonomy_to_envelope(self):
        async def scenario():
            service = ValidationService(capacity=4)
            return await service.handle_request(
                {"id": 9, "op": "validate", "schema_id": "ghost", "document": "<a/>"}
            )

        response = run(scenario())
        assert response["id"] == 9
        assert response["ok"] is False
        assert response["error"]["type"] == "ServiceError"

    def test_handle_request_bad_xml_keeps_connection_semantics(self):
        async def scenario():
            service = ValidationService(capacity=4)
            info = await service.register_schema(AB_TEXT)
            return await service.handle_request(
                {
                    "id": 1,
                    "op": "validate",
                    "schema_id": info["schema_id"],
                    "document": "<a><unclosed>",
                }
            )

        response = run(scenario())
        assert response["ok"] is False
        assert "Error" in response["error"]["type"]

    def test_inline_schema_and_reuse_false(self):
        async def scenario():
            service = ValidationService(capacity=4)
            fresh = await service.handle_request(
                {
                    "id": 1,
                    "op": "validate",
                    "schema": AB_TEXT,
                    "reuse": False,
                    "document": VALID_DOC,
                }
            )
            registered = await service.handle_request(
                {
                    "id": 2,
                    "op": "validate",
                    "schema": AB_TEXT,
                    "document": VALID_DOC,
                }
            )
            return fresh, registered, service.registry.stats()

        fresh, registered, stats = run(scenario())
        assert fresh["ok"] and fresh["result"]["verdict"] == "valid"
        assert registered["ok"] and registered["result"]["verdict"] == "valid"
        # reuse:false bypassed the registry entirely
        assert stats["size"] == 1 and stats["compiles"] == 1

    def test_ping_and_stats(self):
        async def scenario():
            service = ValidationService(capacity=4)
            pong = await service.handle_request({"id": 1, "op": "ping"})
            stats = await service.handle_request({"id": 2, "op": "stats"})
            return pong, stats

        pong, stats = run(scenario())
        assert pong["result"] == {"pong": True}
        assert stats["result"]["registry"]["capacity"] == 4


class TestTcpRoundTrip:
    async def _send(self, reader, writer, payload):
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        return json.loads(await reader.readline())

    def test_full_session_over_tcp(self):
        async def scenario():
            service = ValidationService(capacity=4)
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                registered = await self._send(
                    reader, writer, {"id": 1, "op": "register_schema", "schema": AB_TEXT}
                )
                assert registered["ok"], registered
                schema_id = registered["result"]["schema_id"]
                valid = await self._send(
                    reader,
                    writer,
                    {
                        "id": 2,
                        "op": "validate",
                        "schema_id": schema_id,
                        "document": VALID_DOC,
                    },
                )
                batch = await self._send(
                    reader,
                    writer,
                    {
                        "id": 3,
                        "op": "validate_batch",
                        "schema_id": schema_id,
                        "documents": [VALID_DOC] * 4,
                        "max_steps": 5,
                    },
                )
                bad = await self._send(
                    reader, writer, {"id": 4, "op": "validate", "schema_id": "ghost"}
                )
                malformed = await self._send(reader, writer, {"id": 5})
                return valid, batch, bad, malformed
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        valid, batch, bad, malformed = run(scenario())
        assert valid["ok"] and valid["result"]["verdict"] == "valid"
        assert batch["ok"] and batch["result"]["partial"] is True
        assert batch["result"]["completed"] == 3
        assert bad["ok"] is False
        # missing 'document' — but schema_id resolution fails first for
        # ghost ids; id 5 has no op at all and fails protocol decode
        assert malformed["ok"] is False
        assert malformed["error"]["type"] == "ProtocolError"

    def test_connection_survives_errors(self):
        async def scenario():
            service = ValidationService(capacity=4)
            server = await service.start(port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                first = json.loads(await reader.readline())
                pong = await self._send(reader, writer, {"id": 2, "op": "ping"})
                return first, pong
            finally:
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()

        first, pong = run(scenario())
        assert first["ok"] is False and first["error"]["type"] == "ProtocolError"
        assert pong["ok"] is True and pong["result"]["pong"] is True
