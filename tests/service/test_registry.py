"""`SchemaRegistry`: content addressing, LRU eviction under refcounts,
and concurrent-compile deduplication."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.service.registry as registry_mod
from repro.errors import ServiceError
from repro.families.hard import example_2_6
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.text_format import dumps
from repro.service import SchemaRegistry


def _schema(n: int) -> SingleTypeEDTD:
    """A family of structurally distinct schemas (root arity n)."""
    return SingleTypeEDTD(
        alphabet={"a", "b"},
        types={"ra", "tb"},
        rules={"ra": ", ".join(["tb"] * n) if n else "~", "tb": "~"},
        starts={"ra"},
        mu={"ra": "a", "tb": "b"},
    )


class TestContentAddressing:
    def test_same_object_registers_once(self):
        registry = SchemaRegistry(capacity=4)
        schema = _schema(1)
        first = registry.register(schema)
        second = registry.register(schema)
        assert first is second
        assert registry.stats()["compiles"] == 1
        assert registry.stats()["hits"] == 1

    def test_structural_copy_converges(self):
        registry = SchemaRegistry(capacity=4)
        first = registry.register(_schema(2))
        second = registry.register(_schema(2))
        assert first is second
        assert registry.stats()["compiles"] == 1

    def test_source_text_fast_path(self):
        registry = SchemaRegistry(capacity=4)
        text = dumps(_schema(1))
        first = registry.register(text)
        second = registry.register(text)
        assert first is second
        assert registry.stats()["compiles"] == 1
        assert registry.stats()["hits"] == 1

    def test_text_and_object_converge(self):
        registry = SchemaRegistry(capacity=4)
        by_object = registry.register(_schema(3))
        by_text = registry.register(dumps(_schema(3)))
        assert by_object is by_text

    def test_lookup_and_contains(self):
        registry = SchemaRegistry(capacity=4)
        handle = registry.register(_schema(1))
        assert handle.schema_id in registry
        assert registry.lookup(handle.schema_id) is handle
        assert registry.lookup("no-such-id") is None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServiceError):
            SchemaRegistry(capacity=0)


class TestEviction:
    def test_lru_bounds_residency(self):
        registry = SchemaRegistry(capacity=2)
        a = registry.register(_schema(1))
        b = registry.register(_schema(2))
        c = registry.register(_schema(3))
        assert len(registry) == 2
        assert a.schema_id not in registry  # coldest, evicted
        assert b.schema_id in registry and c.schema_id in registry
        assert registry.stats()["evictions"] == 1

    def test_lookup_freshens(self):
        registry = SchemaRegistry(capacity=2)
        a = registry.register(_schema(1))
        registry.register(_schema(2))
        registry.lookup(a.schema_id)  # freshen a: now 2 is coldest
        evicted_candidate = registry.register(_schema(3))
        assert a.schema_id in registry
        assert evicted_candidate.schema_id in registry

    def test_pinned_entries_survive_pressure(self):
        registry = SchemaRegistry(capacity=1)
        a = registry.register(_schema(1))
        registry.acquire(a.schema_id)
        registry.register(_schema(2))
        # capacity transiently exceeded rather than evicting the pinned handle
        assert a.schema_id in registry
        assert registry.stats()["pinned_skips"] >= 1
        registry.release(a.schema_id)
        registry.register(_schema(3))
        assert a.schema_id not in registry  # unpinned and coldest: gone

    def test_release_trims_excess(self):
        registry = SchemaRegistry(capacity=1)
        a = registry.register(_schema(1))
        registry.acquire(a.schema_id)
        registry.register(_schema(2))
        assert len(registry) == 2
        registry.release(a.schema_id)
        assert len(registry) == 1

    def test_lease_pins_for_the_extent(self):
        registry = SchemaRegistry(capacity=1)
        a = registry.register(_schema(1))
        with registry.lease(a.schema_id) as handle:
            registry.register(_schema(2))
            assert handle.schema_id in registry
        assert registry.evict(a.schema_id) or a.schema_id not in registry

    def test_explicit_evict(self):
        registry = SchemaRegistry(capacity=4)
        a = registry.register(_schema(1))
        assert registry.evict(a.schema_id)
        assert a.schema_id not in registry
        assert not registry.evict(a.schema_id)  # already gone

    def test_evict_refuses_pinned(self):
        registry = SchemaRegistry(capacity=4)
        a = registry.register(_schema(1))
        registry.acquire(a.schema_id)
        assert not registry.evict(a.schema_id)
        registry.release(a.schema_id)
        assert registry.evict(a.schema_id)

    def test_acquire_unknown_raises(self):
        registry = SchemaRegistry(capacity=4)
        with pytest.raises(ServiceError):
            registry.acquire("no-such-id")

    def test_evicted_source_alias_is_cleaned(self):
        registry = SchemaRegistry(capacity=4)
        text = dumps(_schema(1))
        a = registry.register(text)
        registry.evict(a.schema_id)
        again = registry.register(text)  # must recompile, not hit a stale alias
        assert again.schema_id == a.schema_id
        assert registry.stats()["compiles"] == 2


class TestConcurrentCompileDedup:
    def test_racing_registrations_compile_once(self, monkeypatch):
        registry = SchemaRegistry(capacity=4)
        started = threading.Barrier(8)
        compile_calls = []
        real_compile = registry_mod.compile_schema

        def slow_compile(schema, **kwargs):
            compile_calls.append(threading.get_ident())
            threading.Event().wait(0.05)  # hold the in-flight window open
            return real_compile(schema, **kwargs)

        monkeypatch.setattr(registry_mod, "compile_schema", slow_compile)
        schema = example_2_6()

        def race():
            started.wait()
            return registry.register(schema)

        with ThreadPoolExecutor(max_workers=8) as pool:
            handles = list(pool.map(lambda _: race(), range(8)))
        assert len(compile_calls) == 1
        assert all(handle is handles[0] for handle in handles)
        stats = registry.stats()
        assert stats["compiles"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 7
