"""The newline-delimited JSON wire protocol: framing, envelopes, and
field extraction."""

from __future__ import annotations

import json

import pytest

from repro.errors import BudgetExceededError, ProtocolError, ServiceError
from repro.service import MAX_LINE_BYTES, decode_request, encode_response
from repro.service.protocol import (
    error_response,
    get_bool,
    get_number,
    get_str,
    get_str_list,
    ok_response,
)


class TestDecodeRequest:
    def test_round_trip(self):
        payload = decode_request(b'{"id": 7, "op": "ping"}\n')
        assert payload == {"id": 7, "op": "ping"}

    def test_accepts_str_lines(self):
        assert decode_request('{"op": "stats"}')["op"] == "stats"

    def test_oversized_line(self):
        line = b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_request(line)

    def test_invalid_utf8(self):
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_request(b'{"op": "\xff\xfe"}')

    def test_invalid_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_request(b"{not json}")

    def test_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_request(b'["op", "ping"]')

    def test_missing_op(self):
        with pytest.raises(ProtocolError, match="missing the 'op'"):
            decode_request(b'{"id": 1}')

    def test_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(b'{"op": "self-destruct"}')


class TestEnvelopes:
    def test_encode_is_one_compact_line(self):
        encoded = encode_response(ok_response(1, {"pong": True}))
        assert encoded == b'{"id":1,"ok":true,"result":{"pong":true}}\n'
        assert encoded.count(b"\n") == 1

    def test_ok_envelope(self):
        assert ok_response("abc", {"x": 1}) == {
            "id": "abc",
            "ok": True,
            "result": {"x": 1},
        }

    def test_error_envelope_keeps_taxonomy_type(self):
        response = error_response(2, ServiceError("unknown schema_id"))
        assert response["ok"] is False
        assert response["error"]["type"] == "ServiceError"
        assert "unknown schema_id" in response["error"]["message"]

    def test_error_envelope_budget_trip(self):
        error = BudgetExceededError("deadline", limit=0.1, progress=None)
        assert error_response(None, error)["error"]["type"] == "BudgetExceededError"

    def test_error_envelope_masks_non_taxonomy(self):
        assert error_response(1, RuntimeError("boom"))["error"]["type"] == (
            "InternalError"
        )

    def test_envelopes_are_json_serializable(self):
        line = encode_response(error_response(3, ProtocolError("bad")))
        assert json.loads(line)["error"]["type"] == "ProtocolError"


class TestFieldExtraction:
    def test_get_str(self):
        assert get_str({"a": "x"}, "a") == "x"
        assert get_str({}, "a", None) is None
        with pytest.raises(ProtocolError, match="missing"):
            get_str({}, "a")
        with pytest.raises(ProtocolError, match="string"):
            get_str({"a": 3}, "a")

    def test_get_bool(self):
        assert get_bool({"a": True}, "a") is True
        assert get_bool({}, "a") is False
        assert get_bool({}, "a", True) is True
        with pytest.raises(ProtocolError, match="boolean"):
            get_bool({"a": "yes"}, "a")

    def test_get_number(self):
        assert get_number({"a": 1.5}, "a") == 1.5
        assert get_number({}, "a") is None
        with pytest.raises(ProtocolError, match="number"):
            get_number({"a": "3"}, "a")
        with pytest.raises(ProtocolError, match=">= 0"):
            get_number({"a": -1}, "a")

    def test_get_number_integer_mode(self):
        assert get_number({"a": 3}, "a", integer=True) == 3
        with pytest.raises(ProtocolError, match="integer"):
            get_number({"a": 3.5}, "a", integer=True)
        with pytest.raises(ProtocolError, match="integer"):
            get_number({"a": True}, "a", integer=True)

    def test_get_str_list(self):
        assert get_str_list({"docs": ["a", "b"]}, "docs") == ["a", "b"]
        with pytest.raises(ProtocolError, match="missing"):
            get_str_list({}, "docs")
        with pytest.raises(ProtocolError, match="list of strings"):
            get_str_list({"docs": ["a", 1]}, "docs")
