"""Tests for the ancestor-separating automaton N_k (Section 4.4.2)."""

from __future__ import annotations

import pytest

from repro.closure.closure import bounded_closure
from repro.closure.nk_automaton import nk_automaton, separates_up_to
from repro.trees.tree import parse_tree


class TestNk:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_separation_property(self, k):
        automaton = nk_automaton({"a", "b"}, k)
        assert separates_up_to(automaton, {"a", "b"}, k)

    def test_size_shape(self):
        # |Sigma|-ary tree of depth k plus |Sigma| sinks.
        automaton = nk_automaton({"a", "b"}, 2)
        expected = 1 + 2 + 4 + 2  # root, depth-1, depth-2, sinks
        assert len(automaton.states) == expected

    def test_deterministic_and_state_labeled(self):
        automaton = nk_automaton({"a", "b"}, 2)
        assert all(len(d) == 1 for d in automaton.transitions.values())
        assert automaton.is_state_labeled()

    def test_total_on_long_strings(self):
        automaton = nk_automaton({"a"}, 1)
        assert automaton.read(("a",) * 10)  # nonempty state set

    def test_deep_strings_collapse_by_last_symbol(self):
        automaton = nk_automaton({"a", "b"}, 1)
        deep_ab = automaton.read(("a", "b", "a", "b"))
        deep_bb = automaton.read(("b", "b", "b", "b"))
        assert deep_ab == deep_bb  # both end in b beyond depth 1...

    def test_type_closure_wrt_nk_equals_plain_closure_on_bounded_depth(self):
        """For trees of depth <= k, N_k-type-guarded exchange coincides
        with ancestor-guarded exchange (the paper's bridge)."""
        trees = [
            parse_tree("a(a(b))"),
            parse_tree("a(a, a)"),
            parse_tree("a(b, a(b))"),
        ]
        k = max(t.depth() for t in trees)
        automaton = nk_automaton({"a", "b"}, k)
        plain = bounded_closure(trees, max_size=5)
        typed = bounded_closure(trees, max_size=5, automaton=automaton)
        assert plain == typed
