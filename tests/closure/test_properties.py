"""Tests for the Theorem 2.11 / 4.2 closure characterizations."""

from __future__ import annotations

from repro.closure.properties import exchange_violation, type_exchange_violation
from repro.families.hard import theorem_4_3_d1_d2
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD


class TestExchangeViolation:
    def test_single_type_language_has_no_violation(self, store_schema):
        assert exchange_violation(store_schema, max_size=6) is None

    def test_union_violation_found(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        violation = exchange_violation(union, max_size=5)
        assert violation is not None
        assert union.accepts(violation.left)
        assert union.accepts(violation.right)
        assert not union.accepts(violation.result)

    def test_violation_fields_consistent(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        violation = exchange_violation(union, max_size=5)
        from repro.closure.exchange import all_exchanges

        assert violation.result in set(
            all_exchanges(violation.left, violation.right)
        )

    def test_type_guarded_violation(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        violation = type_exchange_violation(union, max_size=5)
        assert violation is not None

    def test_intersection_closed(self, ab_star_schema, ab_pair_schema):
        from repro.schemas.ops import st_intersection

        inter = st_intersection(ab_star_schema, ab_pair_schema)
        assert exchange_violation(inter, max_size=5) is None
