"""Tests for closures and derivation trees (Definitions 2.14, 2.16;
Lemma 2.17)."""

from __future__ import annotations

from repro.closure.closure import (
    bounded_closure,
    closure_of_pair,
    derivation_tree_for,
    is_closed_under_exchange,
    is_derivation_tree,
)
from repro.trees.tree import Tree, parse_tree, unary_tree


class TestBoundedClosure:
    def test_contains_inputs(self):
        t1, t2 = parse_tree("a(b)"), parse_tree("a(b(b))")
        closure = bounded_closure([t1, t2], max_size=4)
        assert t1 in closure and t2 in closure

    def test_paper_theorem_4_3_exchange(self):
        # closure(a^m(b), a^n(a,a)) contains the mixed tree from the proof
        # of Theorem 4.3 (with m=2, n=1): exchanging at the depth-2 nodes.
        t = unary_tree("aab")           # a(a(b))
        s = parse_tree("a(a, a)")
        closure = closure_of_pair(t, s, max_size=5)
        assert parse_tree("a(a(b), a)") in closure

    def test_closed_set_is_fixpoint(self):
        t1 = parse_tree("a(b)")
        closure = bounded_closure([t1], max_size=4)
        assert closure == {t1}

    def test_growth_within_size_bound(self):
        t1 = parse_tree("a(a(b))")
        t2 = parse_tree("a(a, a)")
        closure = bounded_closure([t1, t2], max_size=5)
        # Depth-2 nodes share the ancestor string (a, a): mixing produces
        # branchy trees with b-leaves.
        assert parse_tree("a(a(b), a)") in closure
        assert parse_tree("a(a(b), a(b))") in closure
        assert parse_tree("a(a)") in closure
        assert all(tree.size() <= 5 for tree in closure)

    def test_is_closed_under_exchange(self):
        t1 = unary_tree("ab")
        closed = bounded_closure([t1], max_size=3)
        assert is_closed_under_exchange(closed)
        assert not is_closed_under_exchange(
            [parse_tree("a(a(b))"), parse_tree("a(a, a)")]
        )

    def test_different_depth_nodes_never_exchange(self):
        # anc-str equality implies equal depth: {a(b), a(a(b))} is closed.
        assert is_closed_under_exchange([unary_tree("ab"), unary_tree("aab")])

    def test_type_guarded_closure_is_coarser_or_equal(self):
        from repro.schemas.type_automaton import type_automaton
        from repro.schemas.st_edtd import SingleTypeEDTD
        from repro.schemas.ops import edtd_union

        d1 = SingleTypeEDTD(
            alphabet={"a", "b"},
            types={"r", "x"},
            rules={"r": "x?", "x": "~"},
            starts={"r"},
            mu={"r": "a", "x": "b"},
        )
        automaton = type_automaton(d1)
        trees = [parse_tree("a"), parse_tree("a(b)")]
        typed = bounded_closure(trees, max_size=4, automaton=automaton)
        plain = bounded_closure(trees, max_size=4)
        assert typed <= plain


class TestDerivationTrees:
    def test_base_member_has_trivial_derivation(self):
        t = parse_tree("a(b)")
        theta = derivation_tree_for(t, [t], max_size=3)
        assert theta == Tree(t)
        assert is_derivation_tree(theta, [t], t)

    def test_derivation_of_exchanged_tree(self):
        t1 = parse_tree("a(a(b))")
        t2 = parse_tree("a(a, a)")
        target = parse_tree("a(a(b), a)")
        theta = derivation_tree_for(target, [t1, t2], max_size=4)
        assert theta is not None
        assert is_derivation_tree(theta, [t1, t2], target)

    def test_no_derivation_outside_closure(self):
        t1 = parse_tree("a(b)")
        target = parse_tree("a(c)")
        assert derivation_tree_for(target, [t1], max_size=4) is None

    def test_checker_rejects_wrong_root(self):
        t = parse_tree("a(b)")
        theta = Tree(parse_tree("a(c)"))
        assert not is_derivation_tree(theta, [t], t)

    def test_checker_rejects_non_base_leaf(self):
        t = parse_tree("a(b)")
        other = parse_tree("a(c)")
        assert not is_derivation_tree(Tree(other), [t], other)

    def test_checker_rejects_invalid_internal_step(self):
        t1 = parse_tree("a(b)")
        t2 = parse_tree("a(c)")
        bogus = Tree(parse_tree("a(b, c)"), [Tree(t1), Tree(t2)])
        assert not is_derivation_tree(bogus, [t1, t2], parse_tree("a(b, c)"))

    def test_checker_rejects_unary_internal_node(self):
        t = parse_tree("a(b)")
        bogus = Tree(t, [Tree(t)])
        assert not is_derivation_tree(bogus, [t], t)

    def test_lemma_2_17_equivalence_bounded(self):
        # Everything in the bounded closure has a derivation tree and vice
        # versa (Lemma 2.17 restricted to the bounded universe).
        base = [unary_tree("ab"), parse_tree("a(a, a)"), unary_tree("aa")]
        closure = bounded_closure(base, max_size=4)
        for member in closure:
            theta = derivation_tree_for(member, base, max_size=4)
            assert theta is not None, member
            assert is_derivation_tree(theta, base, member)
