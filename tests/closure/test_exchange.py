"""Tests for ancestor-(type-)guarded subtree exchange (Definitions 2.10, 4.1)."""

from __future__ import annotations

import pytest

from repro.closure.exchange import (
    all_exchanges,
    all_type_guarded_exchanges,
    anc_type,
    exchange,
    try_exchange,
    type_guarded_exchange,
)
from repro.families.hard import example_2_6
from repro.schemas.type_automaton import type_automaton
from repro.trees.tree import parse_tree, unary_tree


class TestGuardedExchange:
    def test_valid_exchange(self):
        t1 = parse_tree("a(b(c), d)")
        t2 = parse_tree("a(b(e, e), d)")
        result = exchange(t1, (0,), t2, (0,))
        assert result == parse_tree("a(b(e, e), d)")

    def test_exchange_at_different_paths_same_ancstr(self):
        t1 = unary_tree("aab")   # a(a(b))
        t2 = unary_tree("aaab")  # a(a(a(b)))
        # node (0,) in t1 has anc-str (a,a); node (0,) in t2 too.
        result = exchange(t1, (0,), t2, (0,))
        assert result == unary_tree("aaab")

    def test_guard_violation_raises(self):
        t1 = parse_tree("a(b)")
        t2 = parse_tree("a(c)")
        with pytest.raises(ValueError):
            exchange(t1, (0,), t2, (0,))

    def test_try_exchange_returns_none_on_violation(self):
        assert try_exchange(parse_tree("a(b)"), (0,), parse_tree("a(c)"), (0,)) is None

    def test_root_exchange(self):
        t1 = parse_tree("a(b)")
        t2 = parse_tree("a(c, c)")
        assert exchange(t1, (), t2, ()) == t2

    def test_all_exchanges_cover_pairs(self):
        t1 = parse_tree("a(b, b)")
        t2 = parse_tree("a(b(b), b)")
        results = set(all_exchanges(t1, t2))
        # Replacing either b-child of t1 by the b(b) subtree of t2:
        assert parse_tree("a(b(b), b)") in results
        assert parse_tree("a(b, b(b))") in results

    def test_all_exchanges_respect_guard(self):
        t1 = parse_tree("a(b)")
        t2 = parse_tree("c(b)")
        # anc-strs (a,b) vs (c,b): only no-op root exchanges... roots differ
        # too, so no exchange at all.
        assert list(all_exchanges(t1, t2)) == []

    def test_self_exchange_contains_identity(self):
        t = parse_tree("a(b, c)")
        assert t in set(all_exchanges(t, t))


class TestTypeGuardedExchange:
    def test_anc_type(self):
        edtd = example_2_6()
        automaton = type_automaton(edtd)
        tree = parse_tree("a(b)")
        assert anc_type(tree, (0,), automaton) == {"t2a", "t2b"}

    def test_type_guard_allows_exchange(self):
        edtd = example_2_6()
        automaton = type_automaton(edtd)
        t1 = parse_tree("a(b)")
        t2 = parse_tree("a(b(b))")
        result = type_guarded_exchange(t1, (0,), t2, (0,), automaton)
        assert result == parse_tree("a(b(b))")

    def test_type_guard_rejects_empty_type(self):
        edtd = example_2_6()
        automaton = type_automaton(edtd)
        # anc-str (b,) is unreachable: type set empty -> guard fails.
        t1 = parse_tree("b(b)")
        assert type_guarded_exchange(t1, (0,), t1, (0,), automaton) is None

    def test_type_guard_finer_than_label_guard(self):
        # With a DFA automaton distinguishing depth, nodes with equal labels
        # but different depths cannot be exchanged.
        from repro.strings.dfa import DFA

        depth_dfa = DFA(
            states={0, 1, 2, 3},
            alphabet={"a"},
            transitions={(0, "a"): 1, (1, "a"): 2, (2, "a"): 3, (3, "a"): 3},
            initial=0,
            finals=set(),
        ).to_nfa()
        t1 = unary_tree("aa")
        t2 = unary_tree("aaa")
        # Depths 2 and 3 reach different states: the guard rejects.
        assert (
            type_guarded_exchange(t1, (0,), t2, (0, 0), depth_dfa) is None
        )
        # Equal depths reach the same state: the guard accepts.
        assert (
            type_guarded_exchange(t1, (0,), t2, (0,), depth_dfa) is not None
        )

    def test_restrict_labels(self):
        edtd = example_2_6()
        automaton = type_automaton(edtd)
        t1 = parse_tree("a(b)")
        t2 = parse_tree("a(b(b))")
        none_allowed = list(
            all_type_guarded_exchanges(t1, t2, automaton, restrict_labels=frozenset())
        )
        assert none_allowed == []
        only_b = set(
            all_type_guarded_exchanges(
                t1, t2, automaton, restrict_labels=frozenset({"b"})
            )
        )
        assert parse_tree("a(b(b))") in only_b
