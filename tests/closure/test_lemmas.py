"""Executable versions of the closure lemmas (2.15, 2.17, 4.9, Cor 4.10).

All statements are checked on bounded universes: exchanges never deepen
trees, and the test sets are chosen so the size bound covers every tree the
closures can produce (making the bounded checks exact).
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.closure.closure import (
    bounded_closure,
    derivation_tree_for,
    is_closed_under_exchange,
    is_derivation_tree,
)
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.ops import st_intersection
from repro.trees.tree import Tree, parse_tree


def small_trees():
    """Trees of depth <= 3 with <= 2 children per node.

    Exchanges preserve depth and never widen a node, so every tree in the
    closure of such a set has at most 1 + 2 + 4 = 7 nodes — ``BOUND`` below
    makes the bounded closure the *true* closure, which the lemmas need.
    """
    labels = st.sampled_from(["a", "b"])
    leaf = st.builds(Tree, labels)
    depth2 = st.builds(Tree, labels, st.lists(leaf, min_size=0, max_size=2))
    depth3 = st.builds(Tree, labels, st.lists(depth2, min_size=0, max_size=2))
    return st.one_of(leaf, depth2, depth3)


BOUND = 7


class TestLemma215:
    """Intersections of exchange-closed families are exchange-closed."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=3),
           st.lists(small_trees(), min_size=1, max_size=3))
    def test_intersection_of_closures_is_closed(self, set1, set2):
        closed1 = bounded_closure(set1, max_size=BOUND)
        closed2 = bounded_closure(set2, max_size=BOUND)
        intersection = closed1 & closed2
        assert is_closed_under_exchange(intersection)


class TestClosureAlgebra:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=3))
    def test_idempotent(self, trees):
        once = bounded_closure(trees, max_size=BOUND)
        twice = bounded_closure(once, max_size=BOUND)
        assert once == twice

    @settings(max_examples=25, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=2),
           st.lists(small_trees(), min_size=1, max_size=2))
    def test_monotone(self, smaller, extra):
        closed_small = bounded_closure(smaller, max_size=BOUND)
        closed_large = bounded_closure(smaller + extra, max_size=BOUND)
        assert closed_small <= closed_large

    @settings(max_examples=20, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=2),
           st.lists(small_trees(), min_size=1, max_size=2))
    def test_closure_of_union_absorbs_inner_closures(self, set1, set2):
        direct = bounded_closure(set1 + set2, max_size=BOUND)
        staged = bounded_closure(
            list(bounded_closure(set1, max_size=BOUND))
            + list(bounded_closure(set2, max_size=BOUND)),
            max_size=BOUND,
        )
        assert direct == staged

    @settings(max_examples=20, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=3))
    def test_lemma_2_17_every_member_has_a_derivation(self, trees):
        closure = bounded_closure(trees, max_size=6)
        for member in sorted(closure, key=str)[:10]:
            theta = derivation_tree_for(member, trees, max_size=6)
            assert theta is not None
            assert is_derivation_tree(theta, trees, member)


class TestLemma49:
    """If X | Y1 and X | Y2 are exchange-closed, so is
    X | closure(Y1 | Y2)."""

    @settings(max_examples=15, deadline=None)
    @given(st.lists(small_trees(), min_size=1, max_size=2),
           st.lists(small_trees(), min_size=1, max_size=2),
           st.lists(small_trees(), min_size=1, max_size=2))
    def test_statement(self, x_seed, y1_seed, y2_seed):
        # Build closed sets of the required shape: close X first, then
        # close the unions (so X | Yi is closed by construction).
        x = bounded_closure(x_seed, max_size=BOUND)
        xy1 = bounded_closure(list(x) + y1_seed, max_size=BOUND)
        xy2 = bounded_closure(list(x) + y2_seed, max_size=BOUND)
        y1 = xy1 - x
        y2 = xy2 - x
        assert is_closed_under_exchange(x | y1)
        assert is_closed_under_exchange(x | y2)
        combined = x | bounded_closure(y1 | y2, max_size=BOUND)
        assert is_closed_under_exchange(combined)


class TestCorollary410:
    """Maximal lower approximations are determined by either intersection:
    contrapositive check on the Theorem 4.3 family."""

    def test_xn_intersections_differ_in_both_components(self):
        from repro.families.hard import theorem_4_3_d1_d2, theorem_4_3_xn

        d1, d2 = theorem_4_3_d1_d2()
        x1, x2 = theorem_4_3_xn(1), theorem_4_3_xn(2)
        # Different in the D2 part (branching gates differ) ...
        in_d2_1 = st_intersection(x1, d2)
        in_d2_2 = st_intersection(x2, d2)
        assert not single_type_equivalent(in_d2_1, in_d2_2)
        # ... so by Corollary 4.10 they must differ in the D1 part too.
        in_d1_1 = st_intersection(x1, d1)
        in_d1_2 = st_intersection(x2, d1)
        assert not single_type_equivalent(in_d1_1, in_d1_2)
