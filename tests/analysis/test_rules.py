"""Golden-finding tests: each rule against its known-bad fixture."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Severity, analyze_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"


def run_fixture(*parts: str):
    path = FIXTURES.joinpath(*parts)
    return analyze_paths([path], root=FIXTURES)


def by_rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestGovernedLoopRule:
    def test_bad_fixture_flags_every_ungoverned_loop(self):
        findings = run_fixture("strings", "r001_bad.py")
        r001 = by_rule(findings, "R001")
        assert [f.context for f in r001] == [
            "subset_construction",
            "fixpoint",
            "spin",
        ]
        assert all(f.severity is Severity.ERROR for f in r001)
        assert all("budget" in f.message for f in r001)

    def test_no_other_rule_fires_on_bad_fixture(self):
        findings = run_fixture("strings", "r001_bad.py")
        assert findings == by_rule(findings, "R001")

    def test_good_fixture_is_clean(self):
        assert run_fixture("strings", "r001_good.py") == []

    def test_outside_governed_dirs_is_exempt(self):
        source = "def f(queue):\n    while queue:\n        queue.pop()\n"
        assert analyze_source(source, "schemas/helper.py") == []
        flagged = analyze_source(source, "strings/helper.py")
        assert [f.rule for f in flagged] == ["R001"]


class TestDeterministicIterationRule:
    def test_bad_fixture_flags_exactly_the_bad_sites(self):
        findings = run_fixture("r002_bad.py")
        r002 = by_rule(findings, "R002")
        assert [f.context for f in r002] == [
            "number_states",
            "to_table",
            "format_finals",
        ]
        assert findings == r002

    def test_enumerate_over_set_fires_anywhere(self):
        source = (
            "def build(dfa):\n"
            "    return {q: i for i, q in enumerate(dfa.states)}\n"
        )
        findings = analyze_source(source, "schemas/numbering.py")
        assert [f.rule for f in findings] == ["R002"]
        assert "enumerate" in findings[0].message

    def test_emission_module_basename_is_an_emission_context(self):
        source = "def helper(dfa):\n    return [q for q in dfa.finals]\n"
        assert analyze_source(source, "schemas/pretty.py")
        assert analyze_source(source, "schemas/builders.py") == []

    def test_sorted_wrapping_is_clean(self):
        source = (
            "def format_states(dfa):\n"
            "    return [q for q in sorted(dfa.states, key=repr)]\n"
        )
        assert analyze_source(source, "schemas/pretty.py") == []

    def test_order_independent_reducers_are_exempt(self):
        source = (
            "def dumps(edtd):\n"
            "    return all(isinstance(t, str) for t in edtd.types)\n"
        )
        assert analyze_source(source, "schemas/text_format.py") == []

    def test_dict_views_flagged_in_emission_context(self):
        source = (
            "def format_rules(rules):\n"
            "    return [str(k) for k in rules.keys()]\n"
        )
        assert [f.rule for f in analyze_source(source, "x/pretty.py")] == ["R002"]


class TestKernelBoundaryRule:
    def test_bad_fixture_flags_the_hot_loop_only(self):
        findings = run_fixture("strings", "r003_bad.py")
        r003 = by_rule(findings, "R003")
        assert [f.context for f in r003] == ["subset_states"]
        assert r003[0].severity is Severity.WARNING
        assert findings == r003

    def test_kernels_module_is_exempt(self):
        source = (
            "def hot(queue):\n"
            "    while queue:  # ungoverned: fixture\n"
            "        queue.append(frozenset(queue.pop()))\n"
        )
        assert analyze_source(source, "strings/kernels.py") == []
        assert [f.rule for f in analyze_source(source, "strings/other.py")] == ["R003"]

    def test_outside_loops_is_exempt(self):
        source = "def snapshot(states):\n    return frozenset(states)\n"
        assert analyze_source(source, "strings/helper.py") == []


class TestErrorTaxonomyRule:
    def test_bad_fixture_flags_each_violation(self):
        findings = run_fixture("r004_bad.py")
        r004 = by_rule(findings, "R004")
        assert [f.context for f in r004] == [
            "swallow_everything",
            "too_broad",
            "broad_in_tuple",
            "raise_builtin",
        ]
        assert findings == r004

    def test_messages_name_the_violation(self):
        findings = run_fixture("r004_bad.py")
        messages = "\n".join(f.message for f in findings)
        assert "bare except" in messages
        assert "except Exception" in messages
        assert "RuntimeError" in messages


class TestFrozenMutationRule:
    def test_bad_fixture_flags_each_mutation(self):
        findings = run_fixture("r005_bad.py")
        r005 = by_rule(findings, "R005")
        assert [f.context for f in r005] == [
            "Checkpoint.bump",
            "sneak_past_frozen",
            "mutate_local",
        ]
        assert findings == r005

    def test_post_init_setattr_is_sanctioned(self):
        source = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Point:\n"
            "    x: int\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', abs(self.x))\n"
        )
        assert analyze_source(source, "runtime/point.py") == []


class TestFaultSwallowRule:
    def test_bad_fixture_flags_each_swallow(self):
        findings = run_fixture("r007_bad.py")
        r007 = by_rule(findings, "R007")
        assert [f.context for f in r007] == [
            "swallow_oserror",
            "swallow_in_tuple",
            "swallow_in_loop",
        ]
        assert all(f.severity is Severity.ERROR for f in r007)
        assert findings == r007

    def test_messages_name_the_swallowed_type(self):
        messages = "\n".join(f.message for f in run_fixture("r007_bad.py"))
        assert "OSError" in messages
        assert "ValueError" in messages
        assert "CacheError" not in messages.replace("CacheError, OSError", "")

    def test_taxonomy_handlers_are_exempt(self):
        source = (
            "def degrade(task):\n"
            "    try:\n"
            "        task()\n"
            "    except BudgetExceededError:\n"
            "        pass\n"
        )
        assert analyze_source(source, "core/helper.py") == []

    def test_broad_handlers_belong_to_r004_only(self):
        source = (
            "def swallow(task):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert [f.rule for f in analyze_source(source, "core/helper.py")] == ["R004"]

    def test_pragma_on_the_swallowing_line_suppresses(self):
        source = (
            "def probe(path):\n"
            "    try:\n"
            "        return open(path).read()\n"
            "    except OSError:\n"
            "        pass  # repro-lint: disable=R007 -- best-effort probe\n"
        )
        assert analyze_source(source, "cache/helper.py") == []

    def test_recording_the_failure_is_clean(self):
        source = (
            "def record(store, task):\n"
            "    try:\n"
            "        task()\n"
            "    except OSError as error:\n"
            "        store.io_errors += 1\n"
        )
        assert analyze_source(source, "cache/helper.py") == []


class TestApiSignatureRule:
    def test_bad_fixture_flags_each_violation(self):
        findings = run_fixture("core", "r006_bad.py")
        r006 = by_rule(findings, "R006")
        assert [f.context for f in r006] == [
            "positional_budget",
            "missing_trio",
            "missing_trio",
            "bad_default",
            "Wrapper.method",
            "Wrapper.method",
            "Wrapper.method",
        ]
        assert all(f.severity is Severity.ERROR for f in r006)
        assert findings == r006

    def test_messages_name_the_violation(self):
        messages = "\n".join(f.message for f in run_fixture("core", "r006_bad.py"))
        assert "must be keyword-only" in messages
        assert "missing keyword-only parameter 'checkpoint'" in messages
        assert "missing keyword-only parameter 'trace'" in messages
        assert "must default to None" in messages

    def test_api_facade_module_is_in_scope(self):
        source = "def approximate(edtd, budget=None):\n    return edtd\n"
        flagged = analyze_source(source, "api.py")
        # positional budget + missing checkpoint + missing trace
        assert [f.rule for f in flagged] == ["R006"] * 3

    def test_outside_the_api_surface_is_exempt(self):
        source = "def approximate(edtd, budget=None):\n    return edtd\n"
        assert analyze_source(source, "strings/helper.py") == []

    def test_ungoverned_functions_are_exempt(self):
        source = "def enumerate_members(edtd, max_size=6):\n    return []\n"
        assert analyze_source(source, "core/helper.py") == []

    def test_service_dir_methods_are_in_scope(self):
        source = (
            "class Service:\n"
            "    async def validate(self, document, budget=None):\n"
            "        return document\n"
        )
        flagged = analyze_source(source, "service/server.py")
        # positional budget + missing checkpoint + missing trace
        assert [f.rule for f in flagged] == ["R006"] * 3
        assert all(f.context == "Service.validate" for f in flagged)

    def test_private_class_methods_are_exempt(self):
        source = (
            "class _Entry:\n"
            "    def touch(self, budget=None):\n"
            "        return budget\n"
        )
        assert analyze_source(source, "service/registry.py") == []

    def test_ungoverned_methods_are_exempt(self):
        source = (
            "class Registry:\n"
            "    def lookup(self, schema_id):\n"
            "        return schema_id\n"
        )
        assert analyze_source(source, "service/registry.py") == []
