"""R007 fixture: fault-swallowing handlers."""

from repro.errors import BudgetExceededError, CacheError


def swallow_oserror(path):
    try:
        return open(path).read()
    except OSError:
        pass  # line 10 -> R007 (silent discard)


def swallow_in_tuple(task):
    try:
        task()
    except (CacheError, OSError):
        pass  # line 17 -> R007 (OSError swallowed alongside a taxonomy type)


def swallow_in_loop(paths):
    for path in paths:
        try:
            yield open(path).read()
        except ValueError:
            continue  # line 24 -> R007 (failure leaves no trace)


def counted(store, task):
    try:
        task()
    except OSError as error:
        store.note(error)  # records the failure, clean


def wrapped(task):
    try:
        task()
    except OSError as error:
        raise CacheError(str(error)) from error  # re-raised, clean


def mapped_to_value(path):
    try:
        return open(path).read()
    except OSError:
        return None  # the exception becomes the answer, clean


def taxonomy_degrade(task):
    try:
        task()
    except BudgetExceededError:
        pass  # sanctioned degrade pattern, clean


def optional_dependency():
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass  # allowlisted gating pattern, clean


class LocalCacheError(CacheError):
    pass


def local_taxonomy_degrade(task):
    try:
        task()
    except LocalCacheError:
        pass  # local taxonomy subclass, clean


def justified(path):
    try:
        return open(path).read()
    except OSError:
        pass  # repro-lint: disable=R007 -- fixture: best-effort probe
