"""Known-bad fixture for R006 (api-signature).

Public functions — and public methods of public classes — under
``core/`` that declare a ``budget`` parameter must expose the full
governed trio ``*, budget=None, checkpoint=None, trace=None``.
"""


def positional_budget(edtd, budget=None, *, checkpoint=None, trace=None):
    """Flagged: ``budget`` declared positionally."""
    return edtd, budget, checkpoint, trace


def missing_trio(edtd, *, budget=None):
    """Flagged twice: ``checkpoint`` and ``trace`` both missing."""
    return edtd, budget


def bad_default(edtd, *, budget=None, checkpoint=None, trace=False):
    """Flagged: ``trace`` defaults to something other than None."""
    return edtd, budget, checkpoint, trace


def conforming(edtd, *, budget=None, checkpoint=None, trace=None):
    """Clean: the full trio, keyword-only, all defaulting to None."""
    return edtd, budget, checkpoint, trace


def ungoverned(edtd, max_size=6):
    """Clean: no budget parameter, so the surface is its own business."""
    return edtd, max_size


def _private_helper(edtd, budget=None):
    """Clean: underscore-prefixed functions manage their own surface."""
    return edtd, budget


class Wrapper:
    def method(self, edtd, budget=None):
        """Flagged three times: public method of a public class with a
        positional budget and neither checkpoint nor trace."""
        return edtd, budget

    def governed(self, edtd, *, budget=None, checkpoint=None, trace=None):
        """Clean: a method carrying the full trio."""
        return edtd, budget, checkpoint, trace

    def _private_method(self, edtd, budget=None):
        """Clean: underscore-prefixed methods manage their own surface."""
        return edtd, budget


class _Internal:
    def method(self, edtd, budget=None):
        """Clean: methods of private classes are exempt."""
        return edtd, budget


def outer(edtd, *, budget=None, checkpoint=None, trace=None):
    """Clean, and so is the nested helper."""

    def inner(chunk, budget=None):
        return chunk, budget

    return inner(edtd)
