"""Pragma fixture: suppression markers for the engine tests.

Lives outside the ``strings`` fixture package on purpose: the generic
``repro-lint: disable=`` pragma is exercised through ``analyze_source``
with a governed fake path.
"""


def disabled_generic(queue):
    while queue:  # repro-lint: disable=R001 -- caller bounds the queue
        queue.pop()


def disabled_wrong_rule(queue):
    while queue:  # repro-lint: disable=R002 -- does not cover R001
        queue.pop()
