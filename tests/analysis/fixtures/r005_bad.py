"""R005 fixture: mutation of frozen dataclass instances."""

from dataclasses import dataclass


@dataclass(frozen=True)
class Checkpoint:
    steps: int
    phase: str

    def __post_init__(self):
        object.__setattr__(self, "phase", self.phase or "start")  # factory, clean

    def bump(self):
        self.steps = self.steps + 1  # line 15 -> R005 (self-mutation)


def sneak_past_frozen(checkpoint):
    object.__setattr__(checkpoint, "steps", 0)  # line 19 -> R005 (setattr outside factory)


def mutate_local():
    checkpoint = Checkpoint(steps=0, phase="start")
    checkpoint.steps = 5  # line 24 -> R005 (local instance mutation)
    return checkpoint


@dataclass
class MutableConfig:
    retries: int


def mutate_unfrozen():
    config = MutableConfig(retries=0)
    config.retries = 3  # not frozen, clean
    return config
