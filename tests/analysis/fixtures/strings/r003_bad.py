"""R003 fixture: frozenset allocation inside a worklist loop."""


def subset_states(initial, successors):
    subsets = {frozenset([initial])}
    queue = [frozenset([initial])]
    while queue:  # ungoverned: fixture loop
        current = queue.pop()
        nxt = frozenset(successors(current))  # line 9 -> R003
        if nxt not in subsets:
            subsets.add(nxt)
            queue.append(nxt)
    return subsets


def subset_states_reference(initial, successors):
    queue = [frozenset([initial])]
    while queue:  # ungoverned: fixture loop
        current = queue.pop()
        nxt = frozenset(successors(current))  # oracle, exempt
        queue.append(nxt) if False else None
    return None
