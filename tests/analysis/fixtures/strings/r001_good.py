"""R001 fixture: loops that satisfy (or are exempt from) the budget rule."""

from collections import deque


def governed_direct(initial, successors, budget):
    states = {initial}
    queue = deque([initial])
    while queue:  # charges via a budget method call
        budget.tick(frontier=len(queue))
        state = queue.popleft()
        for nxt in successors(state):
            if nxt not in states:
                states.add(nxt)
                queue.append(nxt)
    return states


def governed_bound_method(initial, successors, budget):
    tick = budget.tick
    queue = deque([initial])
    while queue:  # charges via a locally bound budget method
        tick()
        queue.popleft()


def governed_delegation(items, process, budget):
    queue = deque(items)
    while queue:  # delegates to a governed callee
        process(queue.popleft(), budget=budget)


def bounded_scan(text):
    pos = 0
    while pos < len(text):  # input-bounded test, exempt
        pos += 1
    return pos


def inner_loop_amortizes(rows, budget):
    for row in rows:
        budget.tick()
        pending = list(row)
        while pending:  # nested in a charged outer loop, exempt
            pending.pop()


def marked_ungoverned(queue):
    while queue:  # ungoverned: bounded by the caller-provided queue
        queue.pop()
