"""R001 fixture: worklist loops in a governed package without charging."""

from collections import deque


def subset_construction(initial, successors):
    states = {initial}
    queue = deque([initial])
    while queue:  # line 9: ungoverned worklist -> R001
        state = queue.popleft()
        for nxt in successors(state):
            if nxt not in states:
                states.add(nxt)
                queue.append(nxt)
    return states


def fixpoint(step, seed):
    changed = True
    current = seed
    while changed:  # line 20: ungoverned fixpoint -> R001
        changed = False
        nxt = step(current)
        if nxt != current:
            current, changed = nxt, True
    return current


def spin():
    while True:  # line 30: unbounded spin -> R001
        break
