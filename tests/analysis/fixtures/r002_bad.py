"""R002 fixture: nondeterministic enumeration and emission-path iteration."""


def number_states(dfa):
    return {state: i for i, state in enumerate(dfa.states)}  # line 5 -> R002


def to_table(dfa):
    rows = []
    for state in dfa.states:  # line 10: unsorted set in a to_* function -> R002
        rows.append(str(state))
    return rows


def format_finals(dfa):
    return ", ".join(str(q) for q in dfa.finals)  # line 16 -> R002


def format_sorted(dfa):
    return ", ".join(sorted(str(q) for q in dfa.finals))  # sorted, clean


def to_flag(dfa):
    return all(isinstance(q, str) for q in dfa.states)  # order-independent, clean


def build_index(dfa):
    for state in dfa.states:  # not an emission function, clean
        yield state
