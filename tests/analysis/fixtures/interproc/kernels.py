"""R010 fixture: memo-cache key completeness at ``_memoized`` call sites.

The file is named ``kernels.py`` because R010 only audits the cache
module basenames.  ``cached_bad`` drops ``flag`` from its key (fires);
``cached_good`` keys on everything behavior-affecting; ``cached_waived``
documents the omission with a disable pragma.
"""

_CACHE = {}


def _memoized(cache, key, build, budget=None):
    if key not in cache:
        cache[key] = build()
    return cache[key]


def cached_bad(language, flag, *, budget=None):
    def build():
        return (language, flag)

    return _memoized(_CACHE, ("bad", language), build, budget)


def cached_good(language, flag, *, budget=None):
    def build():
        return (language, flag)

    key = ("good", language, flag)
    return _memoized(_CACHE, key, build, budget)


def cached_waived(language, flag, *, budget=None):
    def build():
        return (language,)

    return _memoized(  # repro-lint: disable=R010 -- fixture: exercised suppress path
        _CACHE, ("waived", language), build, budget
    )
