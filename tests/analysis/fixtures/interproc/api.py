"""R008 fixture: public entry points reaching worklist loops.

``run`` reaches an ungoverned loop (fires); the marked, waived,
governed, and unreachable variants are all silent.
"""

from collections import deque


def _drain(queue):
    total = 0
    while queue:
        total += queue.popleft()
    return total


def _drain_marked(queue):
    total = 0
    while queue:  # ungoverned: bounded by the caller-provided queue
        total += queue.popleft()
    return total


def _drain_waived(queue):
    total = 0
    while queue:  # repro-lint: disable=R008 -- fixture: exercised suppress path
        total += queue.popleft()
    return total


def _drain_governed(queue, budget):
    total = 0
    while queue:
        budget.tick(1)
        total += queue.popleft()
    return total


def _never_called(queue):
    while queue:
        queue.popleft()


def run(items):
    return _drain(deque(items))


def run_marked(items):
    return _drain_marked(deque(items))


def run_waived(items):
    return _drain_waived(deque(items))


def run_governed(items, *, budget=None, checkpoint=None, trace=None):
    del checkpoint, trace  # fixture: only the budget matters here
    return _drain_governed(deque(items), budget)
