"""R011 fixture: ``*_reference`` oracles drifting from their kernel twins.

``collapse_reference`` drops ``checkpoint=`` (fires); ``shift`` takes
``budget`` positionally so its reference twin reports the keyword-only
violation (fires); ``merge`` twins match; ``waived_reference`` drifted
but carries a disable pragma.
"""


def collapse(values, *, budget=None, checkpoint=None, trace=None):
    return frozenset(values)


def collapse_reference(values, *, budget=None, trace=None):
    return frozenset(values)


def merge(values, *, budget=None):
    return tuple(values)


def merge_reference(values, *, budget=None):
    return tuple(values)


def shift(values, budget=None):
    return list(values)


def shift_reference(values, *, budget=None):
    return list(values)


def waived(values, *, budget=None, checkpoint=None, trace=None):
    return set(values)


def waived_reference(values):  # repro-lint: disable=R011 -- fixture: exercised suppress path
    return set(values)
