"""R009 fixture: ``# repro-par: shardable`` claims vs inferred effects.

``tainted`` writes a module global (fires); ``clean`` really is pure;
``waived`` performs I/O but carries a disable pragma on its def line.
"""

_CALLS = 0


# repro-par: shardable
def tainted(values):
    global _CALLS
    _CALLS += 1
    return tuple(sorted(values))


# repro-par: shardable
def clean(values):
    return tuple(sorted(set(values)))


# repro-par: shardable
def waived(values):  # repro-lint: disable=R009 -- fixture: exercised suppress path
    print(len(values))
    return tuple(values)


def unannotated(sink):
    sink.append("not shardable, never checked")
    return sink
