"""R004 fixture: taxonomy-violating error handling."""


def swallow_everything(task):
    try:
        task()
    except:  # line 7 -> R004 (bare)
        pass


def too_broad(task):
    try:
        task()
    except Exception:  # line 14 -> R004 (broad)
        return None


def broad_in_tuple(task):
    try:
        task()
    except (ValueError, BaseException):  # line 21 -> R004 (broad in tuple)
        return None


def raise_builtin():
    raise RuntimeError("boom")  # line 26 -> R004 (builtin outside allowlist)


def raise_allowed(value):
    if value < 0:
        raise ValueError("negative")  # allowlisted builtin, clean


class LocalError(Exception):
    pass


def raise_local():
    raise LocalError("domain error")  # unresolvable statically, clean


def reraise(task):
    try:
        task()
    except ValueError:
        raise  # bare re-raise, clean
