"""Budget governance of the constructions brought under the R001 regime
by the repro-lint cleanup: Hopcroft minimization, BTA determinization,
transition monoids, and derivative automata.

Contract (same as tests/runtime/test_governed_constructions.py): within
budget the governed run is identical to an ungoverned run; a tiny budget
trips promptly with a labeled phase; an ambient ``with Budget(...)``
context governs calls that pass no explicit budget.
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError
from repro.runtime import Budget
from repro.strings.derivatives import dfa_from_regex
from repro.strings.hopcroft import hopcroft_minimize
from repro.strings.ops import as_dfa
from repro.strings.regex import parse
from repro.tree_automata.bta import BTA
from repro.tree_automata.monoid import transition_monoid_from_dfa


def sample_dfa():
    return as_dfa("(a | b)*, a, (a | b), (a | b)")


def sample_bta() -> BTA:
    return BTA(
        states={1, 2, 3},
        alphabet={"a", "b"},
        leaf_rules={"a": {1, 2}, "b": {2}},
        internal_rules={
            ("a", 1, 2): {3},
            ("a", 2, 2): {1, 3},
            ("b", 3, 1): {2},
        },
        finals={3},
    )


class TestHopcroftGovernance:
    def test_within_budget_matches_ungoverned(self):
        dfa = sample_dfa()
        governed = hopcroft_minimize(dfa, budget=Budget(max_steps=100_000))
        assert governed.isomorphic_to(hopcroft_minimize(dfa))

    def test_tiny_budget_trips_with_phase(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            hopcroft_minimize(sample_dfa(), budget=Budget(max_steps=2))
        assert exc_info.value.progress.phase == "hopcroft"

    def test_ambient_budget_governs(self):
        with Budget(max_steps=2):
            with pytest.raises(BudgetExceededError):
                hopcroft_minimize(sample_dfa())


class TestBtaDeterminizeGovernance:
    def test_within_budget_matches_ungoverned(self):
        governed = sample_bta().determinize(budget=Budget(max_states=10_000))
        ungoverned = sample_bta().determinize()
        assert governed.states == ungoverned.states
        assert governed.finals == ungoverned.finals
        assert governed.internal_rules == ungoverned.internal_rules

    def test_tiny_budget_trips_with_phase(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            sample_bta().determinize(budget=Budget(max_states=1))
        assert exc_info.value.progress.phase == "bta-determinize"

    def test_ambient_budget_governs_complement(self):
        with Budget(max_states=1):
            with pytest.raises(BudgetExceededError):
                sample_bta().complement()


class TestMonoidGovernance:
    def test_within_budget_matches_ungoverned(self):
        dfa = sample_dfa().completed()
        governed, _ = transition_monoid_from_dfa(dfa, budget=Budget(max_states=100_000))
        ungoverned, _ = transition_monoid_from_dfa(dfa)
        assert governed.elements == ungoverned.elements

    def test_tiny_budget_trips_with_phase(self):
        with pytest.raises(BudgetExceededError) as exc_info:
            transition_monoid_from_dfa(
                sample_dfa().completed(), budget=Budget(max_states=1)
            )
        assert exc_info.value.progress.phase == "transition-monoid"


class TestDerivativeDfaGovernance:
    def test_within_budget_matches_ungoverned(self):
        expr = parse("(a | b)*, a, (a | b)")
        governed = dfa_from_regex(expr, budget=Budget(max_states=10_000))
        assert governed.isomorphic_to(dfa_from_regex(expr))

    def test_tiny_budget_trips_with_phase(self):
        expr = parse("(a | b)*, a, (a | b), (a | b), (a | b)")
        with pytest.raises(BudgetExceededError) as exc_info:
            dfa_from_regex(expr, budget=Budget(max_states=1))
        assert exc_info.value.progress.phase == "derivative-dfa"
