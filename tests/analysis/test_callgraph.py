"""Unit tests for the call-graph layer: resolution kinds, narrowing,
entry points, and reachability."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ModuleContext, Program
from repro.analysis.callgraph import module_name_for


def _program(*sources):
    """Build a Program from (path, source) pairs."""
    ctxs = [
        ModuleContext.from_source(source, Path(path)) for path, source in sources
    ]
    return Program.from_contexts(ctxs)


def _calls(program, qualname):
    return {r.display: r for r in program.functions[qualname].calls}


class TestModuleNames:
    def test_repro_rooted(self):
        assert module_name_for("src/repro/core/upper.py") == "repro.core.upper"

    def test_package_init(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_bare_stem_for_fixtures(self):
        assert module_name_for("tests/fixtures/api.py") == "api"


class TestResolutionKinds:
    def test_function_constructor_builtin_dynamic(self):
        program = _program(
            (
                "m.py",
                "class Box:\n"
                "    def __init__(self, v):\n"
                "        self.v = v\n"
                "\n"
                "def helper(x):\n"
                "    return x + 1\n"
                "\n"
                "def go(x, mystery):\n"
                "    b = Box(helper(x))\n"
                "    n = len([b])\n"
                "    return mystery_global(n)\n",
            )
        )
        calls = _calls(program, "m.go")
        assert calls["Box"].kind == "constructor"
        assert calls["Box"].targets == ("m.Box.__init__",)
        assert calls["helper"].kind == "function"
        assert calls["helper"].targets == ("m.helper",)
        assert calls["len"].kind == "builtin"
        assert calls["mystery_global"].kind == "dynamic"

    def test_param_call(self):
        program = _program(
            ("m.py", "def apply(func, x):\n    return func(x)\n")
        )
        record = _calls(program, "m.apply")["func()"]
        assert record.kind == "param-call"
        assert record.attr == "func"

    def test_budget_alias(self):
        program = _program(
            (
                "m.py",
                "def go(pending, budget):\n"
                "    tick = budget.tick\n"
                "    tick(len(pending))\n",
            )
        )
        record = _calls(program, "m.go")["budget.tick"]
        assert record.kind == "method"
        assert record.receiver_name == "budget"

    def test_external_alias(self):
        program = _program(
            (
                "m.py",
                "import numpy as _np\n"
                "def go(x):\n"
                "    int64 = _np.int64\n"
                "    return int64(x)\n",
            )
        )
        record = _calls(program, "m.go")["int64"]
        assert record.kind == "module-attr"
        assert record.external == "numpy.int64"


class TestMethodNarrowing:
    TWO_CLASSES = (
        "m.py",
        "class Pure:\n"
        "    def step(self):\n"
        "        return 1\n"
        "\n"
        "class Dirty:\n"
        "    def step(self):\n"
        "        self.n = 2\n"
        "\n"
        "def annotated(ctx: Pure):\n"
        "    return ctx.step()\n"
        "\n"
        "def constructed():\n"
        "    ctx = Dirty()\n"
        "    return ctx.step()\n"
        "\n"
        "def unknown(ctx):\n"
        "    return ctx.step()\n",
    )

    def test_annotation_narrows_targets(self):
        program = _program(self.TWO_CLASSES)
        record = _calls(program, "m.annotated")["ctx.step"]
        assert record.targets == ("m.Pure.step",)

    def test_constructor_typed_local_narrows_targets(self):
        program = _program(self.TWO_CLASSES)
        record = _calls(program, "m.constructed")["ctx.step"]
        assert record.targets == ("m.Dirty.step",)

    def test_unannotated_receiver_unions_by_name(self):
        program = _program(self.TWO_CLASSES)
        record = _calls(program, "m.unknown")["ctx.step"]
        assert set(record.targets) == {"m.Pure.step", "m.Dirty.step"}


class TestEntryPointsAndReachability:
    def test_entry_points_are_public_api_functions(self):
        program = _program(
            (
                "pkg/api.py",
                "def public(x):\n"
                "    return _helper(x)\n"
                "\n"
                "def _helper(x):\n"
                "    return x\n",
            ),
            ("pkg/other.py", "def also_public(x):\n    return x\n"),
        )
        assert program.entry_points() == frozenset({"api.public"})

    def test_reachability_follows_address_taken_references(self):
        program = _program(
            (
                "api.py",
                "def main(args):\n"
                "    handler = _on_done\n"
                "    return handler\n"
                "\n"
                "def _on_done():\n"
                "    return _leaf()\n"
                "\n"
                "def _leaf():\n"
                "    return 0\n"
                "\n"
                "def _orphan():\n"
                "    return 1\n",
            )
        )
        reached = program.reachable_from(["api.main"])
        assert {"api.main", "api._on_done", "api._leaf"} <= reached
        assert "api._orphan" not in reached
