"""Golden-fixture coverage for the whole-program rules R008–R011.

Every rule is exercised both ways: a fixture that *fires* and the
matching suppress path (``# ungoverned:`` for R008, a reasoned
``# repro-lint: disable=RXXX`` pragma for the rest), plus the silent
"actually fine" variants (governed loop, pure function, complete key,
matching twins).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures" / "interproc"


@pytest.fixture(scope="module")
def findings():
    return analyze_paths([FIXTURES])


def _rule(findings, rule_id):
    return [f for f in findings if f.rule == rule_id]


class TestR008GovernanceEscape:
    def test_fires_on_reachable_ungoverned_loop(self, findings):
        hits = _rule(findings, "R008")
        assert len(hits) == 1
        (hit,) = hits
        assert hit.path.endswith("api.py")
        assert "reachable from public entry point(s) run" in hit.message
        # The finding points at the loop inside the *private* helper the
        # public entry delegates to — that is the whole point of R008.
        assert hit.context == "_drain"

    def test_ungoverned_pragma_suppresses(self, findings):
        assert not any(
            f.context == "_drain_marked" for f in _rule(findings, "R008")
        )

    def test_disable_pragma_suppresses(self, findings):
        assert not any(
            f.context == "_drain_waived" for f in _rule(findings, "R008")
        )

    def test_budgeted_loop_is_silent(self, findings):
        assert not any(
            f.context == "_drain_governed" for f in _rule(findings, "R008")
        )

    def test_unreachable_loop_is_silent(self, findings):
        assert not any(
            f.context == "_never_called" for f in _rule(findings, "R008")
        )


class TestR009ParallelSafety:
    def test_fires_on_effectful_shardable_claim(self, findings):
        hits = _rule(findings, "R009")
        assert len(hits) == 1
        (hit,) = hits
        assert hit.path.endswith("shardable.py")
        assert "mutates-global" in hit.message
        assert "global statement" in hit.message  # origin is explained

    def test_pure_claim_and_waiver_are_silent(self, findings):
        # `clean` certifies; `waived` performs I/O but carries a reasoned
        # disable pragma; `unannotated` mutates args but never claimed.
        assert len(_rule(findings, "R009")) == 1


class TestR010CacheKeyCompleteness:
    def test_fires_when_key_drops_a_parameter(self, findings):
        hits = _rule(findings, "R010")
        assert len(hits) == 1
        (hit,) = hits
        assert hit.path.endswith("kernels.py")
        assert "flag" in hit.message
        assert "language" not in hit.message  # reached via the key tuple

    def test_complete_key_and_waiver_are_silent(self, findings):
        # `cached_good` routes every behavior-affecting parameter through
        # a local into the key; `cached_waived` documents the omission.
        assert len(_rule(findings, "R010")) == 1


class TestR011TwinDrift:
    def test_fires_on_missing_governed_keyword(self, findings):
        hits = [
            f
            for f in _rule(findings, "R011")
            if "missing checkpoint=" in f.message
        ]
        assert len(hits) == 1
        assert "collapse" in hits[0].message

    def test_fires_on_positional_budget(self, findings):
        hits = [
            f
            for f in _rule(findings, "R011")
            if "must be keyword-only" in f.message
        ]
        assert len(hits) == 1
        assert "shift" in hits[0].message

    def test_matching_twins_and_waiver_are_silent(self, findings):
        assert len(_rule(findings, "R011")) == 2


def test_fixture_dir_total(findings):
    """Exactly the five designed findings — nothing else fires."""
    assert len(findings) == 5
