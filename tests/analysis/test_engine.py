"""Engine mechanics: pragmas, fingerprints, parse errors, file collection."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ModuleContext, analyze_paths, analyze_source
from repro.analysis.engine import _relpath

FIXTURES = Path(__file__).parent / "fixtures"


class TestPragmas:
    def test_generic_disable_suppresses_named_rule(self):
        source = (
            "def f(queue):\n"
            "    while queue:  # repro-lint: disable=R001 -- caller bounds it\n"
            "        queue.pop()\n"
        )
        assert analyze_source(source, "strings/x.py") == []

    def test_disable_for_other_rule_does_not_suppress(self):
        source = (
            "def f(queue):\n"
            "    while queue:  # repro-lint: disable=R002 -- wrong rule\n"
            "        queue.pop()\n"
        )
        assert [f.rule for f in analyze_source(source, "strings/x.py")] == ["R001"]

    def test_disable_accepts_multiple_rules(self):
        source = (
            "def f(queue):\n"
            "    while queue:  # repro-lint: disable=R002,R001 -- both\n"
            "        queue.pop()\n"
        )
        assert analyze_source(source, "strings/x.py") == []

    def test_ungoverned_marker_is_r001_shorthand(self):
        source = (
            "def f(queue):\n"
            "    while queue:  # ungoverned: bounded by caller\n"
            "        queue.pop()\n"
        )
        assert analyze_source(source, "strings/x.py") == []

    def test_ungoverned_marker_does_not_cover_other_rules(self):
        source = (
            "def f(queue):\n"
            "    while queue:  # ungoverned: bounded by caller\n"
            "        queue.append(frozenset(queue.pop()))\n"
        )
        assert [f.rule for f in analyze_source(source, "strings/x.py")] == ["R003"]

    def test_fixture_file_pragmas(self):
        findings = analyze_paths([FIXTURES / "r001_pragma.py"], root=FIXTURES)
        # The file is outside a governed dir, so R001 never fires at all;
        # re-analyze the same source under a governed fake path.
        assert findings == []
        source = (FIXTURES / "r001_pragma.py").read_text(encoding="utf-8")
        flagged = analyze_source(source, "strings/r001_pragma.py")
        assert [f.context for f in flagged] == ["disabled_wrong_rule"]


class TestModuleContext:
    def test_qualname_nests_classes_and_functions(self):
        source = (
            "class Outer:\n"
            "    def method(self):\n"
            "        def inner():\n"
            "            pass\n"
        )
        ctx = ModuleContext.from_source(source, Path("strings/q.py"))
        import ast

        inner = next(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.FunctionDef) and node.name == "inner"
        )
        assert ctx.qualname(inner) == "Outer.method.inner"

    def test_in_dirs_matches_any_path_component(self):
        ctx = ModuleContext.from_source("x = 1\n", Path("src/repro/strings/nfa.py"))
        assert ctx.in_dirs({"strings"})
        assert not ctx.in_dirs({"closure"})

    def test_relpath_prefers_root(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        assert _relpath(target, tmp_path) == "pkg/mod.py"


class TestFindingShape:
    def test_fingerprint_is_line_independent(self):
        source_a = "def f(queue):\n    while queue:\n        queue.pop()\n"
        source_b = "# a new leading comment\n" + source_a
        (finding_a,) = analyze_source(source_a, "strings/x.py")
        (finding_b,) = analyze_source(source_b, "strings/x.py")
        assert finding_a.line != finding_b.line
        assert finding_a.fingerprint == finding_b.fingerprint

    def test_render_and_to_dict_carry_location_and_hint(self):
        (finding,) = analyze_source(
            "def f(queue):\n    while queue:\n        queue.pop()\n",
            "strings/x.py",
        )
        rendered = finding.render()
        assert rendered.startswith("strings/x.py:2:")
        assert "R001" in rendered
        payload = finding.to_dict()
        assert payload["severity"] == "error"
        assert payload["hint"]
        assert payload["snippet"] == "while queue:"


class TestParseErrors:
    def test_unparsable_file_yields_r000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        findings = analyze_paths([bad], root=tmp_path)
        assert [f.rule for f in findings] == ["R000"]
        assert "does not parse" in findings[0].message


class TestCollectFiles:
    def test_skips_pycache_and_non_python(self, tmp_path):
        from repro.analysis import collect_files

        (tmp_path / "keep.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not python\n", encoding="utf-8")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "skip.py").write_text("x = 1\n", encoding="utf-8")
        assert collect_files([tmp_path]) == [tmp_path / "keep.py"]
