"""Baseline mechanics: round-trip, multiset matching, staleness, versioning."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, analyze_source, apply_baseline

UNGOVERNED = "def f(queue):\n    while queue:\n        queue.pop()\n"


def one_finding():
    (finding,) = analyze_source(UNGOVERNED, "strings/x.py")
    return finding


class TestRoundTrip:
    def test_save_load_preserves_entries(self, tmp_path):
        finding = one_finding()
        baseline = Baseline.from_findings([finding], justification="seed loop")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert loaded.entries[0].justification == "seed loop"

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}), encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)


class TestApplyBaseline:
    def test_matching_finding_is_suppressed(self):
        finding = one_finding()
        baseline = Baseline.from_findings([finding], justification="known")
        result = apply_baseline([finding], baseline)
        assert result.new == []
        assert result.suppressed == [finding]
        assert result.stale == []

    def test_no_baseline_passes_everything_through(self):
        finding = one_finding()
        result = apply_baseline([finding], None)
        assert result.new == [finding]
        assert result.suppressed == []

    def test_matching_survives_line_drift(self):
        finding = one_finding()
        baseline = Baseline.from_findings([finding])
        (drifted,) = analyze_source("# comment\n" + UNGOVERNED, "strings/x.py")
        assert drifted.line != finding.line
        result = apply_baseline([drifted], baseline)
        assert result.new == []

    def test_entries_are_consumed_multiset_style(self):
        source = UNGOVERNED + "\n\ndef g(queue):\n    while queue:\n        queue.pop()\n"
        findings = analyze_source(source, "strings/x.py")
        assert len(findings) == 2
        # The two findings have different contexts (f vs g), so one entry
        # covers exactly one of them.
        baseline = Baseline.from_findings(findings[:1])
        result = apply_baseline(findings, baseline)
        assert len(result.new) == 1
        assert len(result.suppressed) == 1

    def test_duplicate_fingerprints_need_matching_multiplicity(self):
        finding = one_finding()
        baseline = Baseline.from_findings([finding])
        result = apply_baseline([finding, finding], baseline)
        assert len(result.new) == 1
        assert len(result.suppressed) == 1

    def test_unmatched_entry_reported_stale(self):
        entry = BaselineEntry(
            rule="R001",
            path="strings/gone.py",
            context="deleted_function",
            snippet="while queue:",
            justification="the code was deleted",
        )
        result = apply_baseline([], Baseline(entries=[entry]))
        assert result.stale == [entry]
