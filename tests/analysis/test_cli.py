"""CLI behaviour: exit codes, JSON report shape, baseline workflow."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "strings" / "r001_bad.py"
GOOD = FIXTURES / "strings" / "r001_good.py"


class TestExitCodes:
    def test_findings_exit_1(self, capsys):
        assert main([str(BAD), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "3 new findings" in out

    def test_clean_exit_0(self, capsys):
        assert main([str(GOOD), "--no-baseline"]) == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, capsys):
        try:
            main(["definitely/not/a/path.py"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected SystemExit")


class TestJsonReport:
    def test_report_shape(self, capsys):
        assert main([str(BAD), "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"]["new"] == 3
        assert report["summary"]["suppressed"] == 0
        first = report["findings"][0]
        assert first["rule"] == "R001"
        assert first["severity"] == "error"
        assert first["path"].endswith("r001_bad.py")
        assert first["hint"]


class TestSelect:
    def test_select_restricts_rules(self, capsys):
        mixed = FIXTURES / "strings" / "r003_bad.py"
        assert main([str(mixed), "--no-baseline", "--select", "R001"]) == 0
        capsys.readouterr()
        assert main([str(mixed), "--no-baseline", "--select", "R003"]) == 1

    def test_unknown_rule_is_a_usage_error(self):
        try:
            main([str(BAD), "--select", "R999"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected SystemExit")

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # 1. Grandfather the current findings.
        assert main([str(BAD), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        # 2. Same findings are now suppressed.
        assert main([str(BAD), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed by baseline" in out
        # 3. Against a clean file every entry is stale (reported, still exit 0).
        assert main([str(GOOD), "--baseline", str(baseline)]) == 0
        captured = capsys.readouterr()
        assert "stale baseline" in captured.err

    def test_update_baseline_entries_need_justification(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(BAD), "--baseline", str(baseline), "--update-baseline"])
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert all(e["justification"] == "TODO: justify" for e in payload["entries"])
