"""CLI behaviour: exit codes, JSON report shape, baseline workflow."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "strings" / "r001_bad.py"
GOOD = FIXTURES / "strings" / "r001_good.py"


class TestExitCodes:
    def test_findings_exit_1(self, capsys):
        assert main([str(BAD), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "3 new findings" in out

    def test_clean_exit_0(self, capsys):
        assert main([str(GOOD), "--no-baseline"]) == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_missing_path_is_a_usage_error(self, capsys):
        try:
            main(["definitely/not/a/path.py"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected SystemExit")


class TestJsonReport:
    def test_report_shape(self, capsys):
        assert main([str(BAD), "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["summary"]["new"] == 3
        assert report["summary"]["suppressed"] == 0
        first = report["findings"][0]
        assert first["rule"] == "R001"
        assert first["severity"] == "error"
        assert first["path"].endswith("r001_bad.py")
        assert first["hint"]


class TestSelect:
    def test_select_restricts_rules(self, capsys):
        mixed = FIXTURES / "strings" / "r003_bad.py"
        assert main([str(mixed), "--no-baseline", "--select", "R001"]) == 0
        capsys.readouterr()
        assert main([str(mixed), "--no-baseline", "--select", "R003"]) == 1

    def test_unknown_rule_is_a_usage_error(self):
        try:
            main([str(BAD), "--select", "R999"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("expected SystemExit")

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        # 1. Grandfather the current findings.
        assert main([str(BAD), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert baseline.exists()
        capsys.readouterr()
        # 2. Same findings are now suppressed.
        assert main([str(BAD), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed by baseline" in out
        # 3. Against a clean file every entry is stale: reported AND the run
        # fails — a rotted suppression list must not pass silently.
        assert main([str(GOOD), "--baseline", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "stale baseline" in captured.err

    def test_update_baseline_entries_need_justification(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(BAD), "--baseline", str(baseline), "--update-baseline"])
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert all(e["justification"] == "TODO: justify" for e in payload["entries"])

    def test_update_baseline_on_clean_tree_writes_empty_baseline(
        self, tmp_path, capsys
    ):
        # Grandfathering a clean tree must pin an *empty* baseline (the
        # src-clean gate relies on this), and the empty baseline must
        # behave exactly like no baseline afterwards.
        baseline = tmp_path / "baseline.json"
        assert main([str(GOOD), "--baseline", str(baseline), "--update-baseline"]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["entries"] == []
        capsys.readouterr()
        assert main([str(GOOD), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main([str(BAD), "--baseline", str(baseline)]) == 1


class TestPragmaRejection:
    LOOP = (
        "def drain(queue):\n"
        "    while queue:  {pragma}\n"
        "        queue.pop()\n"
    )

    def test_reasonless_disable_does_not_suppress(self):
        from repro.analysis import analyze_source

        findings = analyze_source(
            self.LOOP.format(pragma="# repro-lint: disable=R001"),
            "strings/worklist.py",
        )
        assert [f.rule for f in findings] == ["R001"]

    def test_reasoned_disable_suppresses(self):
        from repro.analysis import analyze_source

        findings = analyze_source(
            self.LOOP.format(pragma="# repro-lint: disable=R001 -- caller bounds it"),
            "strings/worklist.py",
        )
        assert findings == []

    def test_rejected_pragma_is_recorded_for_tooling(self):
        from repro.analysis import ModuleContext

        ctx = ModuleContext.from_source(
            self.LOOP.format(pragma="# repro-lint: disable=R001"),
            Path("strings/worklist.py"),
        )
        assert ctx.rejected_pragmas == [
            (2, "# repro-lint: disable=R001"),
        ]


class TestEffectsJson:
    def test_stdout_report_validates(self, capsys):
        from repro.analysis import load_effects_schema
        from repro.observability.schema import trace_schema_errors

        assert main([str(GOOD), "--effects-json", "-"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert trace_schema_errors(report, load_effects_schema()) == []
        assert report["summary"]["functions"] == len(report["functions"])

    def test_file_report(self, tmp_path, capsys):
        out = tmp_path / "effects.json"
        assert main([str(GOOD), "--effects-json", str(out)]) == 0
        assert "wrote effect report" in capsys.readouterr().out
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["version"] == 1

    def test_parse_error_exits_1(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n", encoding="utf-8")
        assert main([str(broken), "--effects-json", "-"]) == 1
        assert "does not parse" in capsys.readouterr().err
