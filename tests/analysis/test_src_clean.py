"""The library's own source must stay clean modulo the checked-in baseline."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import Baseline, analyze_paths, apply_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "analysis-baseline.json"


def test_src_tree_is_clean_modulo_baseline():
    findings = analyze_paths([SRC], root=REPO_ROOT)
    baseline = Baseline.load(BASELINE) if BASELINE.exists() else None
    result = apply_baseline(findings, baseline)
    assert result.new == [], "\n".join(f.render() for f in result.new)


def test_baseline_has_no_stale_entries():
    findings = analyze_paths([SRC], root=REPO_ROOT)
    baseline = Baseline.load(BASELINE) if BASELINE.exists() else None
    result = apply_baseline(findings, baseline)
    assert result.stale == [], [e.to_dict() for e in result.stale]


def test_baseline_entries_are_justified():
    if not BASELINE.exists():
        return
    for entry in Baseline.load(BASELINE).entries:
        assert entry.justification
        assert "TODO" not in entry.justification, entry.to_dict()


def test_baseline_is_empty():
    """PR 7 cleared the last baselined finding (R003 on BTA.determinize —
    the subset construction now runs on the integer-coded kernels of
    ``repro.tree_automata.kernels``).  The source tree must stay clean
    without suppressions: new findings get fixed, not baselined."""
    if not BASELINE.exists():
        return
    assert Baseline.load(BASELINE).entries == []
