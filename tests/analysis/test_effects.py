"""Unit tests for the effect-inference lattice, plus the src-wide
acceptance gate: the effect report certifies the annotated kernels and
validates against the checked-in JSON schema."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    ModuleContext,
    Program,
    effect_report,
    infer_effects,
    load_contexts,
    load_effects_schema,
)
from repro.analysis.effects import (
    MUTATES_ARGS,
    MUTATES_GLOBAL,
    PERFORMS_IO,
    READS_CONTEXTVAR,
    UNKNOWN,
)
from repro.observability.schema import trace_schema_errors

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"


def _effects(*sources):
    ctxs = [
        ModuleContext.from_source(source, Path(path)) for path, source in sources
    ]
    return infer_effects(Program.from_contexts(ctxs))


class TestIntrinsicEffects:
    def test_global_statement(self):
        results = _effects(
            ("m.py", "N = 0\ndef bump():\n    global N\n    N += 1\n")
        )
        assert results["m.bump"].effects == {MUTATES_GLOBAL}

    def test_module_global_mutation(self):
        results = _effects(
            ("m.py", "CACHE = {}\ndef poke(k, v):\n    CACHE[k] = v\n")
        )
        assert results["m.poke"].effects == {MUTATES_GLOBAL}

    def test_print_is_io(self):
        results = _effects(("m.py", "def shout(x):\n    print(x)\n"))
        assert results["m.shout"].effects == {PERFORMS_IO}

    def test_contextvar_read(self):
        results = _effects(
            (
                "m.py",
                "from contextvars import ContextVar\n"
                "AMBIENT = ContextVar('ambient')\n"
                "def peek():\n"
                "    return AMBIENT.get()\n",
            )
        )
        assert results["m.peek"].effects == {READS_CONTEXTVAR}

    def test_argument_mutation(self):
        results = _effects(("m.py", "def push(acc, x):\n    acc.append(x)\n"))
        assert results["m.push"].effects == {MUTATES_ARGS}

    def test_unresolved_call_is_unknown(self):
        results = _effects(("m.py", "def weird(x):\n    return mystery(x)\n"))
        assert results["m.weird"].effects == {UNKNOWN}

    def test_pure_function(self):
        results = _effects(
            ("m.py", "def norm(values):\n    return tuple(sorted(set(values)))\n")
        )
        assert results["m.norm"].effects == frozenset()


class TestPropagation:
    def test_effects_flow_up_the_call_chain(self):
        results = _effects(
            (
                "m.py",
                "def leaf(x):\n"
                "    print(x)\n"
                "\n"
                "def mid(x):\n"
                "    return leaf(x)\n"
                "\n"
                "def top(x):\n"
                "    return mid(x)\n",
            )
        )
        assert results["m.top"].effects == {PERFORMS_IO}
        # origins record one hop of the chain; tracing continues there
        assert "m.mid" in results["m.top"].origins[PERFORMS_IO]

    def test_fresh_local_absorbs_callee_mutation(self):
        # `seed` mutates its own parameter; callers that hand it a fresh
        # local stay pure, callers that forward their *own* parameter
        # inherit mutates-args.
        results = _effects(
            (
                "m.py",
                "def seed(acc):\n"
                "    acc.append(0)\n"
                "    return acc\n"
                "\n"
                "def fresh():\n"
                "    out = []\n"
                "    return seed(out)\n"
                "\n"
                "def forwards(acc):\n"
                "    return seed(acc)\n",
            )
        )
        assert results["m.fresh"].effects == frozenset()
        assert results["m.forwards"].effects == {MUTATES_ARGS}

    def test_higher_order_resolves_at_call_site(self):
        # `apply` calls its parameter: pure when handed a pure lambda,
        # IO when handed print.
        results = _effects(
            (
                "m.py",
                "def apply(func, x):\n"
                "    return func(x)\n"
                "\n"
                "def pure_use(x):\n"
                "    return apply(lambda v: v + 1, x)\n"
                "\n"
                "def io_use(x):\n"
                "    return apply(print, x)\n",
            )
        )
        assert results["m.pure_use"].effects == frozenset()
        assert results["m.io_use"].effects == {PERFORMS_IO}

    def test_sanctioned_runtime_calls_are_masked(self):
        # Budget charging is the governed protocol, not an effect.
        results = _effects(
            (
                "m.py",
                "def drain(queue, budget):\n"
                "    while queue:  # ungoverned: fixture\n"
                "        budget.tick(1)\n"
                "        queue.pop()\n",
            )
        )
        assert results["m.drain"].effects == {MUTATES_ARGS}  # queue.pop only


class TestShardableCertification:
    def test_annotated_and_certified(self):
        results = _effects(
            (
                "m.py",
                "# repro-par: shardable\n"
                "def clean(values):\n"
                "    return tuple(sorted(values))\n"
                "\n"
                "# repro-par: shardable\n"
                "def tainted(values):\n"
                "    print(values)\n",
            )
        )
        assert results["m.clean"].annotated and results["m.clean"].certified
        assert results["m.tainted"].annotated
        assert not results["m.tainted"].certified


class TestSrcWideReport:
    """Acceptance gate: build the report over the real src tree."""

    def _report(self):
        ctxs, errors = load_contexts([SRC], root=REPO_ROOT)
        assert not errors
        return effect_report(Program.from_contexts(ctxs), root="src/repro")

    def test_report_validates_against_schema(self):
        report = self._report()
        assert trace_schema_errors(report, load_effects_schema()) == []

    def test_at_least_two_certified_shardable_kernels(self):
        report = self._report()
        certified = report["summary"]["certified_shardable"]
        assert len(certified) >= 2
        # The paper's hot paths must be on the parallel allowlist.
        assert "repro.strings.kernels.cached_min_dfa" in certified
        assert "repro.core.upper._restrict_content" in certified

    def test_every_annotation_in_src_certifies(self):
        # R009 enforces this as a lint rule; pin it here as a regression
        # test so a drive-by effect regression fails loudly in CI.
        report = self._report()
        summary = report["summary"]
        assert set(summary["annotated_shardable"]) == set(
            summary["certified_shardable"]
        )
