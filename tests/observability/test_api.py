"""Tests for the `repro.api` facade: result objects, trace attachment,
budget metering, and the dispatch logic of the inclusion entry points."""

from __future__ import annotations

import pytest

import repro
from repro.api import (
    ApproximationResult,
    DefinabilityReport,
    approximate_lower,
    approximate_upper,
    definability,
    schema_equivalent,
    schema_includes,
    validate,
)
from repro.core.decision import Definability
from repro.errors import TreeSyntaxError
from repro.families.hard import example_2_6
from repro.observability import METRICS, Trace
from repro.runtime import Budget
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.type_automaton import is_single_type
from repro.strings.kernels import clear_caches
from repro.trees.tree import parse_tree


@pytest.fixture(autouse=True)
def fresh_observability():
    clear_caches()
    METRICS.reset()
    yield
    METRICS.reset()


class TestApproximateUpper:
    def test_returns_schema_with_evidence(self):
        result = approximate_upper(example_2_6())
        assert isinstance(result, ApproximationResult)
        assert result.direction == "upper"
        assert is_single_type(result.schema)
        # The owned trace captured the construction that ran.
        assert result.trace.root.name == "approximate-upper"
        names = {span.name for span in result.trace.root.walk()}
        assert "upper-approximation" in names
        # The owned metering budget captured the work.
        assert result.usage.states > 0
        assert result.usage.steps > 0
        assert result.usage.elapsed_seconds >= 0.0

    def test_result_is_frozen(self):
        result = approximate_upper(example_2_6())
        with pytest.raises(AttributeError):
            result.direction = "lower"

    def test_schema_guided_defaults_to_self_guide(self):
        # With no explicit guide, schema-guided runs against the input's
        # own ancestor machine: same approximated language as blind, same
        # artifact as passing guide=edtd explicitly.
        edtd = example_2_6()
        blind = approximate_upper(edtd).schema
        auto = approximate_upper(edtd, strategy="schema-guided").schema
        explicit = approximate_upper(
            edtd, strategy="schema-guided", guide=edtd
        ).schema
        assert single_type_equivalent(auto, blind)
        assert single_type_equivalent(auto, explicit)

    def test_explicit_trace_and_budget_are_used(self):
        budget = Budget()
        with Trace("mine") as trace:
            result = approximate_upper(example_2_6(), budget=budget, trace=trace)
        assert result.trace is trace
        assert result.usage.states == budget.states
        assert budget.states > 0

    def test_usage_is_a_delta_on_shared_budgets(self):
        budget = Budget()
        first = approximate_upper(example_2_6(), budget=budget)
        clear_caches()
        second = approximate_upper(example_2_6(), budget=budget)
        assert first.usage.states + second.usage.states == budget.states

    def test_matches_the_underlying_construction(self):
        from repro.core.upper import minimal_upper_approximation

        facade = approximate_upper(example_2_6()).schema
        direct = minimal_upper_approximation(example_2_6())
        assert single_type_equivalent(facade, direct)


class TestApproximateLower:
    def test_lower_is_included_in_target(self):
        target = example_2_6()
        result = approximate_lower(target, max_size=4)
        assert result.direction == "lower"
        assert bool(schema_includes(target, result.schema))
        assert result.trace.root.name == "approximate-lower"


class TestDefinability:
    def test_yes_verdict(self):
        report = definability(example_2_6())
        assert isinstance(report, DefinabilityReport)
        assert report.verdict is Definability.YES
        assert bool(report)
        assert report.error is None
        names = {span.name for span in report.trace.root.walk()}
        assert "definability" in names

    def test_unknown_on_tiny_budget(self):
        report = definability(example_2_6(), budget=Budget(max_steps=1))
        assert report.verdict is Definability.UNKNOWN
        assert not report
        assert report.error is not None


class TestInclusionAndValidation:
    def test_schema_includes_single_type_route(self):
        target = example_2_6()
        upper = approximate_upper(target).schema
        result = schema_includes(upper, target)
        assert bool(result)
        assert result.verdict is True

    def test_schema_includes_general_route(self):
        # A general (non-single-type) superset forces the tree-automata
        # route; example 2.6 included in itself.
        edtd = example_2_6()
        assert not is_single_type(edtd)
        assert bool(schema_includes(edtd, edtd))

    def test_schema_equivalent(self):
        edtd = example_2_6()
        assert bool(schema_equivalent(edtd, edtd))
        upper = approximate_upper(edtd).schema
        # Example 2.6 is single-type definable, so upper is equivalent.
        assert bool(schema_equivalent(edtd, upper))

    def test_validate_tree_and_xml(self, store_schema):
        tree = parse_tree("store(item(price))")
        assert bool(validate(store_schema, tree))
        assert bool(validate(store_schema, "<store><item><price/></item></store>"))
        assert not validate(store_schema, "<store><price/></store>")

    def test_validate_rejects_malformed_xml(self, store_schema):
        with pytest.raises(TreeSyntaxError):
            validate(store_schema, "<store><item>")


class TestPackageRootReExports:
    def test_facade_is_importable_from_repro(self):
        assert repro.approximate_upper is approximate_upper
        assert repro.Trace is Trace
        for name in (
            "approximate_lower",
            "definability",
            "schema_includes",
            "schema_equivalent",
            "validate",
            "METRICS",
            "Span",
        ):
            assert name in repro.__all__
