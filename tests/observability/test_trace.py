"""Tests for the structured tracing layer (`repro.observability`).

The golden span-tree tests pin *shape only* (`Span.tree_names()`), never
timings: the shape is a function of the construction algorithm and the
fixture schema, so a change here means the construction's phase
structure actually changed.

Memo caches are cleared in setup — a warm kernel cache legitimately
skips whole constructions, which would shrink the span tree.
"""

from __future__ import annotations

import json

import pytest

from repro import observability as obs
from repro.core.decision import Definability, single_type_definability
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import example_2_6
from repro.observability import METRICS, NULL_SPAN, Trace, construction_span
from repro.observability.schema import TraceSchemaError, validate_trace
from repro.runtime import Budget
from repro.strings.kernels import clear_caches
from repro.tree_automata.kernels import clear_caches as clear_tree_caches


@pytest.fixture(autouse=True)
def fresh_observability():
    clear_caches()
    clear_tree_caches()
    METRICS.reset()
    yield
    METRICS.reset()


def _child(span, name):
    for child in span.children:
        if child.name == name:
            return child
    raise AssertionError(f"no child span named {name!r} under {span.name!r}")


#: The phase structure of Construction 3.1 on Example 2.6: one
#: determinization of the type automaton, one content-union pass over the
#: three labels (each uniting NFAs then minimizing), then the per-rule
#: minimizations of the rebuilt single-type schema.
UPPER_SHAPE = (
    "upper-approximation",
    [
        ("determinize", []),
        (
            "content-union",
            [
                ("determinize", []),
                ("hopcroft-refine", []),
                ("determinize", []),
                ("hopcroft-refine", []),
                ("determinize", []),
                ("hopcroft-refine", []),
            ],
        ),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
        ("hopcroft-refine", []),
    ],
)


class TestGoldenSpanTrees:
    def test_upper_approximation_shape(self):
        with Trace("test") as trace:
            minimal_upper_approximation(example_2_6())
        upper = _child(trace.root, "upper-approximation")
        assert upper.tree_names() == UPPER_SHAPE

    def test_upper_approximation_span_accounting(self):
        # A metering budget makes the spans carry states/steps deltas.
        with Budget() as budget, Trace("test") as trace:
            minimal_upper_approximation(example_2_6())
        upper = _child(trace.root, "upper-approximation")
        assert upper.attrs["input_types"] == 3
        assert upper.attrs["output_types"] == 3
        assert 0 < upper.attrs["states"] <= budget.states
        assert 0 < upper.attrs["steps"] <= budget.steps
        assert upper.elapsed >= 0.0

    def test_definability_shape(self):
        with Trace("test") as trace:
            result = single_type_definability(example_2_6())
        assert result.verdict is Definability.YES
        definability = _child(trace.root, "definability")
        assert definability.attrs["verdict"] == "YES"
        # The upper construction runs inside the definability span and the
        # tree-automata inclusion check comes after it.
        names = [child.name for child in definability.children]
        assert "upper-approximation" in names
        assert names[-1] == "bta-inclusion"
        assert names.index("upper-approximation") < names.index("bta-inclusion")
        assert _child(definability, "upper-approximation").tree_names() == UPPER_SHAPE
        assert _child(definability, "bta-inclusion").attrs["included"] is True

    def test_warm_cache_shrinks_the_tree(self):
        with Trace("cold"):
            minimal_upper_approximation(example_2_6())
        with Trace("warm") as warm:
            minimal_upper_approximation(example_2_6())
        upper = _child(warm.root, "upper-approximation")
        assert upper.attrs["cache_hits"] > 0


class TestMetrics:
    def test_construction_metrics_are_reported(self):
        with Trace("test"):
            minimal_upper_approximation(example_2_6())
        snapshot = METRICS.to_dict()
        assert snapshot["upper.runs"]["value"] == 1
        assert snapshot["determinize.runs"]["value"] >= 1
        assert snapshot["hopcroft.runs"]["value"] >= 1
        assert snapshot["upper.output_types"]["count"] == 1

    def test_reset(self):
        METRICS.counter("x").inc()
        METRICS.reset()
        assert METRICS.to_dict() == {}


class TestDisabledByDefault:
    def test_no_ambient_trace_means_null_span(self):
        assert not obs.ENABLED
        assert construction_span("determinize") is NULL_SPAN

    def test_constructions_report_nothing_when_disabled(self):
        minimal_upper_approximation(example_2_6())
        assert not obs.ENABLED
        assert METRICS.to_dict() == {}

    def test_trace_scope_is_bounded(self):
        with Trace("test"):
            assert obs.ENABLED
        assert not obs.ENABLED


class TestExporters:
    def test_json_round_trip_and_schema(self):
        with Trace("test") as trace:
            minimal_upper_approximation(example_2_6())
        data = json.loads(trace.to_json())
        assert data == trace.to_dict()
        validate_trace(data)

    def test_schema_rejects_garbage(self):
        with pytest.raises(TraceSchemaError):
            validate_trace({"schema": 1})
        with pytest.raises(TraceSchemaError):
            validate_trace({"schema": 1, "root": {"name": 7}, "metrics": {}})

    def test_render_mentions_every_span_name(self):
        with Trace("test") as trace:
            minimal_upper_approximation(example_2_6())
        rendered = trace.render()
        for name in ("upper-approximation", "content-union", "determinize"):
            assert name in rendered
