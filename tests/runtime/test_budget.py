"""Unit tests for the resource governor (:mod:`repro.runtime.budget`)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import BudgetExceededError, ReproError
from repro.runtime import (
    Budget,
    BudgetProgress,
    CancellationToken,
    budget_phase,
    current_budget,
    resolve_budget,
)


class TestConstruction:
    def test_unlimited_budget_never_trips(self):
        budget = Budget()
        budget.charge_states(10_000)
        budget.tick(1_000_000)
        budget.check()
        assert budget.states == 10_000
        # charge_states also counts one step per state
        assert budget.steps == 1_010_000

    def test_invalid_check_interval(self):
        with pytest.raises(ValueError):
            Budget(check_interval=3)
        with pytest.raises(ValueError):
            Budget(check_interval=0)

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_states=-1)
        with pytest.raises(ValueError):
            Budget(timeout=-0.5)

    def test_deadline_overrides_timeout(self):
        deadline = time.monotonic() + 100.0
        budget = Budget(timeout=1.0, deadline=deadline)
        assert budget.deadline == deadline


class TestLimits:
    def test_max_states_trips_with_progress(self):
        budget = Budget(max_states=5)
        budget.charge_states(5)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.charge_states(1, frontier=7)
        error = exc_info.value
        assert error.reason == "max-states"
        assert error.limit == 5
        assert error.progress.states_explored == 6
        assert error.progress.frontier_size == 7
        assert error.progress.elapsed_seconds >= 0

    def test_max_steps_trips(self):
        budget = Budget(max_steps=10)
        budget.tick(10)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(1)
        assert exc_info.value.reason == "max-steps"
        assert exc_info.value.progress.steps == 11

    def test_deadline_trips(self):
        budget = Budget(timeout=0.0, check_interval=1)
        time.sleep(0.002)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(1)
        assert exc_info.value.reason == "deadline"

    def test_deadline_checked_only_at_interval(self):
        budget = Budget(timeout=0.0, check_interval=1024)
        time.sleep(0.002)
        # Ticks below the interval boundary skip the clock check entirely.
        for _ in range(1023):
            budget.tick(1)
        with pytest.raises(BudgetExceededError):
            budget.tick(1)

    def test_check_runs_expensive_checks_unconditionally(self):
        budget = Budget(timeout=0.0)
        time.sleep(0.002)
        with pytest.raises(BudgetExceededError):
            budget.check()

    def test_memory_watermark(self):
        # 1 byte is below any real RSS, so this must trip immediately.
        budget = Budget(max_memory_bytes=1, check_interval=1)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(1)
        assert exc_info.value.reason == "memory"

    def test_remaining_time(self):
        assert Budget().remaining_time() is None
        budget = Budget(timeout=100.0)
        remaining = budget.remaining_time()
        assert 99.0 < remaining <= 100.0


class TestCancellation:
    def test_token_cancel(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled

    def test_cancel_trips_budget(self):
        token = CancellationToken()
        budget = Budget(cancel=token, check_interval=1)
        budget.tick(5)
        token.cancel()
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(1)
        assert exc_info.value.reason == "cancelled"

    def test_cancel_from_other_thread(self):
        token = CancellationToken()
        budget = Budget(cancel=token, check_interval=1)
        tripped = threading.Event()

        def worker():
            try:
                while True:
                    budget.tick(1)
            except BudgetExceededError:
                tripped.set()

        thread = threading.Thread(target=worker)
        thread.start()
        token.cancel()
        thread.join(timeout=5)
        assert tripped.is_set()


class TestContextDefault:
    def test_no_ambient_budget(self):
        assert current_budget() is None
        assert resolve_budget(None) is None

    def test_context_manager_installs_and_removes(self):
        budget = Budget(max_states=10)
        with budget:
            assert current_budget() is budget
            assert resolve_budget(None) is budget
        assert current_budget() is None

    def test_explicit_argument_wins(self):
        ambient = Budget(max_states=10)
        explicit = Budget(max_states=20)
        with ambient:
            assert resolve_budget(explicit) is explicit

    def test_nesting_restores_outer(self):
        outer, inner = Budget(), Budget()
        with outer:
            with inner:
                assert current_budget() is inner
            assert current_budget() is outer

    def test_not_reentrant(self):
        budget = Budget()
        with budget:
            with pytest.raises(ReproError):
                with budget:
                    pass  # pragma: no cover

    def test_usable_again_after_exit(self):
        budget = Budget()
        with budget:
            pass
        with budget:
            assert current_budget() is budget


class TestProgressAndPhases:
    def test_progress_snapshot(self):
        budget = Budget()
        budget.charge_states(3)
        budget.tick(4)
        progress = budget.progress(frontier=2)
        assert isinstance(progress, BudgetProgress)
        assert progress.states_explored == 3
        assert progress.steps == 7
        assert progress.frontier_size == 2
        assert "3 states explored" in progress.describe()

    def test_budget_phase_labels_errors(self):
        budget = Budget(max_steps=1)
        with budget_phase(budget, "outer"):
            with budget_phase(budget, "inner"):
                with pytest.raises(BudgetExceededError) as exc_info:
                    budget.tick(2)
            assert budget.phase == "outer"
        assert budget.phase is None
        assert exc_info.value.progress.phase == "inner"

    def test_budget_phase_noop_without_budget(self):
        with budget_phase(None, "anything"):
            pass

    def test_lazy_checkpoint_factory_called_at_trip(self):
        calls = []

        def factory():
            calls.append(1)
            return "snapshot"

        budget = Budget(max_steps=100)
        budget.tick(50, checkpoint=factory)
        assert not calls  # not materialized while within budget
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(51, checkpoint=factory)
        assert calls == [1]
        assert exc_info.value.checkpoint == "snapshot"

    def test_error_message_is_one_line(self):
        budget = Budget(max_steps=1)
        with pytest.raises(BudgetExceededError) as exc_info:
            budget.tick(2)
        assert "\n" not in str(exc_info.value)
        assert "budget exceeded (max-steps)" in str(exc_info.value)
