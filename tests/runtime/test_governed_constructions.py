"""Budget governance of the worst-case-exponential constructions.

The acceptance contract: a run that *trips* terminates promptly with
accurate partial-progress counters; a run that completes *within* budget
is bit-identical to an ungoverned run; and the degradation ladder returns
correct (if unminimized / UNKNOWN) results where soundness allows.
"""

from __future__ import annotations

import time

import pytest

from repro.core.decision import (
    Definability,
    is_single_type_definable,
    single_type_definability,
)
from repro.core.lower import maximal_lower_union, non_violating
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)
from repro.closure.closure import bounded_closure
from repro.errors import BudgetExceededError
from repro.families.hard import (
    theorem_3_2_family,
    theorem_3_6_family,
    theorem_4_3_d1_d2,
)
from repro.runtime import Budget, CancellationToken
from repro.schemas.ops import edtd_intersection, edtd_union
from repro.strings.builders import nth_from_end_is
from repro.strings.determinize import SubsetCheckpoint, determinize
from repro.tree_automata.inclusion import edtd_includes
from repro.trees.tree import parse_tree


def schemas_equal(left, right) -> bool:
    """Structural identity of two single-type EDTDs (types, rules, starts,
    mu, alphabet) — stronger than language equality."""
    return (
        left.alphabet == right.alphabet
        and left.types == right.types
        and left.starts == right.starts
        and left.mu == right.mu
        and set(left.rules) == set(right.rules)
        and all(
            left.rules[t].states == right.rules[t].states
            and left.rules[t].transitions == right.rules[t].transitions
            and left.rules[t].initial == right.rules[t].initial
            and left.rules[t].finals == right.rules[t].finals
            for t in left.rules
        )
    )


class TestHardFamilyExhaustion:
    """The acceptance criterion: theorem_3_2_family(14) under a 1 s / 10k
    state budget trips promptly with populated partial progress."""

    def test_upper_approximation_trips_promptly(self):
        edtd = theorem_3_2_family(14)
        started = time.monotonic()
        with pytest.raises(BudgetExceededError) as exc_info:
            minimal_upper_approximation(
                edtd, budget=Budget(timeout=1.0, max_states=10_000)
            )
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # "promptly": far below the ungoverned blow-up
        error = exc_info.value
        assert error.reason in ("max-states", "deadline")
        progress = error.progress
        assert progress.states_explored > 0
        assert progress.steps >= progress.states_explored
        assert progress.elapsed_seconds <= elapsed + 0.1

    def test_partial_progress_counters_are_accurate(self):
        edtd = theorem_3_2_family(14)
        with pytest.raises(BudgetExceededError) as exc_info:
            minimal_upper_approximation(edtd, budget=Budget(max_states=10_000))
        error = exc_info.value
        # max-states trips on the state *after* the limit.
        assert error.reason == "max-states"
        assert error.progress.states_explored == 10_001
        assert error.progress.frontier_size > 0
        assert error.progress.phase == "determinize"
        # The interrupted subset construction is resumable.
        assert isinstance(error.checkpoint, SubsetCheckpoint)
        assert error.checkpoint.states_explored == 10_001

    def test_ambient_context_budget_governs_too(self):
        edtd = theorem_3_2_family(14)
        with pytest.raises(BudgetExceededError):
            with Budget(max_states=5_000):
                minimal_upper_approximation(edtd)

    def test_ungoverned_run_unaffected(self):
        edtd = theorem_3_2_family(5)
        result = minimal_upper_approximation(edtd)
        # Theorem 3.2's exact prediction survives the governor plumbing.
        from repro.schemas.minimize import minimize_single_type

        assert len(minimize_single_type(result).types) == 2 ** 6


class TestWithinBudgetIdentity:
    """A run completing within budget is bit-identical to an ungoverned
    run — governance only observes, it never perturbs."""

    def test_upper_approximation_identical(self):
        edtd = theorem_3_2_family(5)
        ungoverned = minimal_upper_approximation(edtd, minimize=True)
        governed = minimal_upper_approximation(
            edtd, minimize=True, budget=Budget(timeout=120.0, max_states=10**8)
        )
        assert schemas_equal(ungoverned, governed)

    def test_union_identical(self):
        d1, d2 = theorem_3_6_family(3)
        assert schemas_equal(
            upper_union(d1, d2), upper_union(d1, d2, budget=Budget(timeout=120.0))
        )

    def test_lower_identical(self):
        d1, d2 = theorem_4_3_d1_d2()
        assert schemas_equal(
            maximal_lower_union(d1, d2),
            maximal_lower_union(d1, d2, budget=Budget(timeout=120.0)),
        )

    def test_complement_and_difference_identical(self):
        d1, d2 = theorem_3_6_family(2)
        assert schemas_equal(
            upper_complement(d1), upper_complement(d1, budget=Budget(timeout=120.0))
        )
        assert schemas_equal(
            upper_difference(d1, d2),
            upper_difference(d1, d2, budget=Budget(timeout=120.0)),
        )

    def test_closure_identical(self):
        t1 = parse_tree("a(b, c)")
        t2 = parse_tree("a(c, b)")
        assert bounded_closure([t1, t2], 5) == bounded_closure(
            [t1, t2], 5, budget=Budget(timeout=120.0)
        )

    def test_definability_matches_ungoverned(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        expected = is_single_type_definable(union)
        result = single_type_definability(union, budget=Budget(timeout=120.0))
        assert (result.verdict is Definability.YES) == expected


class TestCheckpointResume:
    def test_determinize_resume_equals_one_shot(self):
        nfa = nth_from_end_is("a", "b", 9)
        full = determinize(nfa)
        with pytest.raises(BudgetExceededError) as exc_info:
            determinize(nfa, budget=Budget(max_states=40))
        checkpoint = exc_info.value.checkpoint
        assert isinstance(checkpoint, SubsetCheckpoint)
        assert 0 < checkpoint.states_explored < len(full.states)
        resumed = determinize(nfa, checkpoint=checkpoint)
        assert resumed.states == full.states
        assert resumed.transitions == full.transitions
        assert resumed.finals == full.finals
        assert resumed.initial == full.initial

    def test_resume_across_multiple_interruptions(self):
        nfa = nth_from_end_is("a", "b", 9)
        full = determinize(nfa)
        checkpoint = None
        for attempt in range(200):
            try:
                resumed = determinize(
                    nfa, budget=Budget(max_states=64), checkpoint=checkpoint
                )
                break
            except BudgetExceededError as error:
                assert error.checkpoint is not None
                checkpoint = error.checkpoint
        else:  # pragma: no cover - would mean no forward progress
            pytest.fail("resume never completed")
        assert resumed.transitions == full.transitions

    def test_definability_resume(self):
        edtd = theorem_3_2_family(6)
        first = single_type_definability(edtd, budget=Budget(max_states=40))
        assert first.verdict is Definability.UNKNOWN
        assert first.error is not None
        assert first.checkpoint is not None
        resumed = single_type_definability(
            edtd, budget=Budget(timeout=120.0), checkpoint=first.checkpoint
        )
        assert resumed.verdict is Definability.YES
        assert bool(resumed)


class TestGracefulDegradation:
    def test_minimize_falls_back_to_unminimized(self):
        """minimize=True degrades to the (still exact) unminimized result
        when only the minimization phase runs out of budget."""
        edtd = theorem_3_2_family(6)
        unminimized = minimal_upper_approximation(edtd)
        # Find how much the mandatory phases cost, then grant barely more,
        # so the budget trips inside minimize_single_type.
        probe = Budget()
        minimal_upper_approximation(edtd, budget=probe)
        budget = Budget(max_steps=probe.steps + 10)
        degraded = minimal_upper_approximation(edtd, minimize=True, budget=budget)
        assert schemas_equal(degraded, unminimized)

    def test_minimize_still_minimizes_with_room(self):
        edtd = theorem_3_2_family(4)
        governed = minimal_upper_approximation(
            edtd, minimize=True, budget=Budget(timeout=120.0)
        )
        assert schemas_equal(governed, minimal_upper_approximation(edtd, minimize=True))

    def test_unknown_verdict_is_falsy(self):
        edtd = theorem_3_2_family(10)
        result = single_type_definability(edtd, budget=Budget(max_states=20))
        assert result.verdict is Definability.UNKNOWN
        assert not result
        assert result.error.progress.states_explored > 0


class TestCancellationIntegration:
    def test_pre_cancelled_token_stops_construction(self):
        token = CancellationToken()
        token.cancel()
        edtd = theorem_3_2_family(12)
        with pytest.raises(BudgetExceededError) as exc_info:
            minimal_upper_approximation(
                edtd, budget=Budget(cancel=token, check_interval=1)
            )
        assert exc_info.value.reason == "cancelled"


class TestOtherGovernedLoops:
    def test_closure_budget_trips(self):
        t1 = parse_tree("a(b, c, b, c)")
        t2 = parse_tree("a(c, b, c, b)")
        with pytest.raises(BudgetExceededError):
            bounded_closure([t1, t2], 9, budget=Budget(max_steps=5))

    def test_intersection_budget_trips(self):
        d1, d2 = theorem_3_6_family(6)
        with pytest.raises(BudgetExceededError):
            edtd_intersection(d1, d2, budget=Budget(max_steps=50))

    def test_inclusion_budget_trips(self):
        d1, d2 = theorem_3_6_family(3)
        union = edtd_union(d1, d2)
        with pytest.raises(BudgetExceededError):
            edtd_includes(union, union, budget=Budget(max_steps=100))

    def test_non_violating_within_budget_identical(self):
        d1, d2 = theorem_4_3_d1_d2()
        assert schemas_equal(
            non_violating(d2, d1), non_violating(d2, d1, budget=Budget(timeout=120.0))
        )

    def test_intersection_within_budget_identical(self):
        d1, d2 = theorem_3_6_family(2)
        assert schemas_equal(
            upper_intersection(d1, d2),
            upper_intersection(d1, d2, budget=Budget(timeout=120.0)),
        )
