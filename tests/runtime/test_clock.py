"""The single-monotonic-clock contract of deadline math.

Every duration in the governor — ``started_at``, ``deadline``,
``elapsed``, ``remaining_time`` — must read the *same* monotonic source
(:func:`repro.runtime.clock.now`).  Mixing in ``time.time()`` anywhere
breaks deadlines whenever the wall clock steps (NTP adjustment, manual
reset, leap smearing): a backwards step would silently extend a deadline,
a forwards step would spuriously trip it.

These tests install a fake clock source and then *skew the wall clock
wildly in both directions* while the monotonic source advances normally —
the budget must not care.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import BudgetExceededError
from repro.runtime import Budget
from repro.runtime import clock


class FakeClock:
    """A controllable monotonic source."""

    def __init__(self, start: float = 1000.0) -> None:
        self.value = start

    def __call__(self) -> float:
        return self.value

    def advance(self, seconds: float) -> None:
        self.value += seconds


@pytest.fixture
def fake_clock():
    fake = FakeClock()
    previous = clock.install(fake)
    try:
        yield fake
    finally:
        clock.uninstall(previous)


class TestClockModule:
    def test_default_source_is_monotonic(self):
        # Same epoch as time.monotonic: two reads straddle it.
        before = time.monotonic()
        reading = clock.now()
        after = time.monotonic()
        assert before <= reading <= after

    def test_install_uninstall_round_trip(self):
        fake = FakeClock(5.0)
        previous = clock.install(fake)
        try:
            assert clock.now() == 5.0
        finally:
            clock.uninstall(previous)
        assert clock.now() != 5.0 or clock.now() > 0


class TestBudgetOnFakeClock:
    def test_elapsed_follows_the_source(self, fake_clock):
        budget = Budget()
        fake_clock.advance(2.5)
        assert budget.elapsed == pytest.approx(2.5)

    def test_timeout_trips_exactly_on_the_source(self, fake_clock):
        budget = Budget(timeout=10.0)
        fake_clock.advance(9.99)
        budget.check()  # inside the allowance
        fake_clock.advance(0.02)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.check()
        assert excinfo.value.reason == "deadline"

    def test_remaining_time(self, fake_clock):
        budget = Budget(timeout=10.0)
        fake_clock.advance(4.0)
        assert budget.remaining_time() == pytest.approx(6.0)

    def test_absolute_deadline_is_on_the_monotonic_epoch(self, fake_clock):
        budget = Budget(deadline=clock.now() + 3.0)
        fake_clock.advance(2.0)
        budget.check()
        fake_clock.advance(2.0)
        with pytest.raises(BudgetExceededError):
            budget.check()


class TestWallClockSkewImmunity:
    """The regression the satellite demands: fake a wall-clock skew and
    assert deadline math is unaffected."""

    def test_wall_clock_jump_backwards_does_not_extend_deadline(
        self, fake_clock, monkeypatch
    ):
        budget = Budget(timeout=1.0)
        # The wall clock leaps a year backwards (time.time only —
        # monotonic sources never step).
        monkeypatch.setattr(time, "time", lambda: -31_536_000.0)
        fake_clock.advance(1.5)
        with pytest.raises(BudgetExceededError):
            budget.check()

    def test_wall_clock_jump_forwards_does_not_trip_deadline(
        self, fake_clock, monkeypatch
    ):
        budget = Budget(timeout=100.0)
        # The wall clock leaps a year forwards; only 1s of monotonic time
        # actually passes.
        monkeypatch.setattr(time, "time", lambda: time.monotonic() + 31_536_000.0)
        fake_clock.advance(1.0)
        budget.check()  # must NOT trip
        assert budget.remaining_time() == pytest.approx(99.0)

    def test_governed_construction_survives_wall_skew(self, fake_clock, monkeypatch):
        from repro.core.upper import minimal_upper_approximation
        from repro.families.hard import example_2_6

        monkeypatch.setattr(time, "time", lambda: 0.0)  # frozen, bogus wall clock
        with Budget(timeout=3600.0):
            schema = minimal_upper_approximation(example_2_6())
        assert schema is not None

    def test_progress_elapsed_uses_monotonic_source(self, fake_clock, monkeypatch):
        monkeypatch.setattr(time, "time", lambda: 9e9)
        budget = Budget()
        fake_clock.advance(0.25)
        assert budget.progress().elapsed_seconds == pytest.approx(0.25)
