"""Exhaustive resume-at-every-trip-point checkpoint round-trip.

The checkpoint contract: for *any* budget trip point, resuming the
construction from the carried :class:`SubsetCheckpoint` yields a DFA
**identical** to an untripped run — not merely equivalent.  The kernel
subset construction is deterministic (sorted symbol order, FIFO
frontier), so states, transitions, initial, and finals must all match
exactly.  Budget charges are additive over the interruption: state
charges sum exactly; step charges sum to within one ``_FLUSH`` tick
batch (the batched-tick staleness the governor documents) and never
overcount.

The sweep trips a run at *every* possible ``max_states`` value from 1 to
the full subset count — every state the BFS materializes is exercised as
a trip point — and again at a spread of ``max_steps`` values, for both
the bitmask kernel and the frozenset reference (their checkpoints are
interchangeable by contract, which is also asserted cross-wise).
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError
from repro.families.hard import theorem_3_2_family
from repro.runtime import Budget
from repro.strings.determinize import SubsetCheckpoint, determinize, determinize_reference
from repro.strings.glushkov import glushkov_nfa
from repro.strings.nfa import NFA
from repro.strings.regex import parse


def _hard_nfa() -> NFA:
    # Glushkov automaton of a regex with real nondeterminism: the subset
    # construction explores a few dozen subset states.
    return glushkov_nfa(parse("(a | b)*, a, (a | b), (a | b)"))


def _assert_identical(left, right) -> None:
    assert left.states == right.states
    assert left.initial == right.initial
    assert left.finals == right.finals
    assert left.transitions == right.transitions


def _full_cost(nfa, construct) -> tuple:
    meter = Budget()
    dfa = construct(nfa, budget=meter)
    return dfa, meter.states, meter.steps


@pytest.mark.parametrize(
    "construct", [determinize, determinize_reference], ids=["kernel", "reference"]
)
class TestEveryTripPoint:
    def test_resume_at_every_max_states(self, construct):
        nfa = _hard_nfa()
        full, full_states, full_steps = _full_cost(nfa, construct)
        total = len(full.states)
        assert total >= 8, "fixture too easy to be exhaustive about"
        tripped = 0
        for limit in range(1, total):
            meter = Budget(max_states=limit)
            try:
                construct(nfa, budget=meter)
            except BudgetExceededError as error:
                tripped += 1
                checkpoint = error.checkpoint
                assert isinstance(checkpoint, SubsetCheckpoint)
                assert 0 < checkpoint.states_explored <= limit + 1
                resume_meter = Budget()
                resumed = construct(nfa, budget=resume_meter, checkpoint=checkpoint)
                _assert_identical(resumed, full)
                # Governance is additive over the interruption: state
                # charges sum exactly; step charges may lose at most one
                # unflushed tick batch at the trip (the documented
                # batched-tick staleness bound) and never overcount.
                assert meter.states + resume_meter.states == full_states
                steps_sum = meter.steps + resume_meter.steps
                assert full_steps - 256 <= steps_sum <= full_steps
            else:
                pytest.fail(f"max_states={limit} below {total} failed to trip")
        assert tripped == total - 1

    def test_resume_at_max_steps_spread(self, construct):
        nfa = _hard_nfa()
        full, _full_states, full_steps = _full_cost(nfa, construct)
        for limit in range(1, full_steps, max(1, full_steps // 37)):
            try:
                construct(nfa, budget=Budget(max_steps=limit))
            except BudgetExceededError as error:
                if error.checkpoint is None:
                    continue  # tripped before any resumable state existed
                resumed = construct(nfa, checkpoint=error.checkpoint)
                _assert_identical(resumed, full)
            else:
                pytest.fail(f"max_steps={limit} below {full_steps} failed to trip")

    def test_double_interruption_chains(self, construct):
        nfa = _hard_nfa()
        full, _s, _t = _full_cost(nfa, construct)
        checkpoint = None
        interruptions = 0
        while True:
            try:
                resumed = construct(
                    nfa, budget=Budget(max_states=3), checkpoint=checkpoint
                )
                break
            except BudgetExceededError as error:
                assert error.checkpoint is not None
                checkpoint = error.checkpoint
                interruptions += 1
                assert interruptions < 100, "resume loop is not making progress"
        assert interruptions >= 2
        _assert_identical(resumed, full)


class TestCrossImplementationResume:
    """Kernel and reference checkpoints are interchangeable by contract."""

    @pytest.mark.parametrize(
        "tripper,resumer",
        [(determinize, determinize_reference), (determinize_reference, determinize)],
        ids=["kernel-trips-reference-resumes", "reference-trips-kernel-resumes"],
    )
    def test_cross_resume_every_trip_point(self, tripper, resumer):
        nfa = _hard_nfa()
        full, _s, _t = _full_cost(nfa, resumer)
        total = len(full.states)
        for limit in range(1, total):
            with pytest.raises(BudgetExceededError) as excinfo:
                tripper(nfa, budget=Budget(max_states=limit))
            checkpoint = excinfo.value.checkpoint
            assert checkpoint is not None
            resumed = resumer(nfa, checkpoint=checkpoint)
            _assert_identical(resumed, full)


class TestExponentialFamilyResume:
    def test_hard_family_resumes_through_checkpoint(self):
        from repro.core.decision import single_type_definability
        from repro.core.decision import Definability

        edtd = theorem_3_2_family(6)
        first = single_type_definability(edtd, budget=Budget(max_states=40))
        assert first.verdict is Definability.UNKNOWN
        assert first.checkpoint is not None
        oracle = single_type_definability(edtd)
        resumed = single_type_definability(
            edtd, budget=Budget(), checkpoint=first.checkpoint
        )
        assert resumed.verdict is oracle.verdict
