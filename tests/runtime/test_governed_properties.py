"""Property tests: governance is observationally transparent.

For *any* input, a construction that completes within its budget must
return exactly what the ungoverned construction returns — the governor
may only abort, never perturb.  Random schemas come from the library's
seeded generators and from hypothesis-driven regex NFAs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.errors import BudgetExceededError
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.runtime import Budget
from repro.schemas.inclusion import single_type_equivalent
from repro.strings.determinize import determinize
from repro.strings.glushkov import glushkov_nfa
from repro.strings.minimize import minimize_dfa
from repro.strings.regex import parse as parse_regex

from tests.runtime.test_governed_constructions import schemas_equal

GENEROUS = dict(timeout=300.0, max_states=10**7)


@st.composite
def regexes(draw) -> str:
    """Small regex strings over {a, b} in the paper's grammar."""
    atom = st.sampled_from(["a", "b", "~"])
    expr = draw(
        st.recursive(
            atom,
            lambda inner: st.one_of(
                st.tuples(inner, inner).map(lambda p: f"({p[0]}, {p[1]})"),
                st.tuples(inner, inner).map(lambda p: f"({p[0]} | {p[1]})"),
                inner.map(lambda e: f"({e})*"),
                inner.map(lambda e: f"({e})+"),
                inner.map(lambda e: f"({e})?"),
            ),
            max_leaves=6,
        )
    )
    return expr


@given(regexes())
@settings(max_examples=40, deadline=None)
def test_determinize_governed_identical(expr):
    nfa = glushkov_nfa(parse_regex(expr))
    plain = determinize(nfa)
    governed = determinize(nfa, budget=Budget(**GENEROUS))
    assert governed.states == plain.states
    assert governed.transitions == plain.transitions
    assert governed.finals == plain.finals


@given(regexes())
@settings(max_examples=40, deadline=None)
def test_minimize_dfa_governed_identical(expr):
    dfa = determinize(glushkov_nfa(parse_regex(expr)))
    plain = minimize_dfa(dfa)
    governed = minimize_dfa(dfa, budget=Budget(**GENEROUS))
    assert governed.states == plain.states
    assert governed.transitions == plain.transitions
    assert governed.finals == plain.finals


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_upper_approximation_governed_identical(seed):
    rng = random.Random(seed)
    edtd = random_edtd(rng, num_labels=3, num_types=4)
    plain = minimal_upper_approximation(edtd, minimize=True)
    governed = minimal_upper_approximation(
        edtd, minimize=True, budget=Budget(**GENEROUS)
    )
    assert schemas_equal(plain, governed)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_upper_union_governed_identical(seed):
    rng = random.Random(seed)
    left = random_single_type_edtd(rng, num_labels=3, num_types=4)
    right = random_single_type_edtd(rng, num_labels=3, num_types=4)
    plain = upper_union(left, right)
    governed = upper_union(left, right, budget=Budget(**GENEROUS))
    assert schemas_equal(plain, governed)
    assert single_type_equivalent(plain, governed)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_interrupted_then_resumed_equals_one_shot(seed):
    """Even when the governor interrupts mid-construction, resuming from
    the checkpoint converges to the exact one-shot result."""
    rng = random.Random(seed)
    edtd = random_edtd(rng, num_labels=3, num_types=5)
    plain = minimal_upper_approximation(edtd)
    checkpoint = None
    for _ in range(500):
        try:
            governed = minimal_upper_approximation(
                edtd, budget=Budget(max_states=3), checkpoint=checkpoint
            )
            break
        except BudgetExceededError as error:
            if error.checkpoint is None:
                # Tripped outside the resumable subset-construction phase:
                # restart that attempt with an unlimited budget instead.
                governed = minimal_upper_approximation(edtd, checkpoint=checkpoint)
                break
            checkpoint = error.checkpoint
    assert schemas_equal(plain, governed)
