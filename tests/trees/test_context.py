"""Unit tests for contexts and forks."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.trees.context import Context, Fork, HoleLabel, context_of, fork_of, is_context_tree
from repro.trees.tree import Tree, parse_tree


class TestHoleLabel:
    def test_equality(self):
        assert HoleLabel("a") == HoleLabel("a")
        assert HoleLabel("a") != HoleLabel("b")

    def test_hash(self):
        assert hash(HoleLabel("a")) == hash(HoleLabel("a"))

    def test_str(self):
        assert str(HoleLabel("a")) == "[a]"


class TestContext:
    def test_context_of_drops_subtree(self):
        tree = parse_tree("a(b(c), d)")
        context = context_of(tree, (0,))
        assert context.hole_symbol == "b"
        assert context.tree.subtree((0,)).children == ()

    def test_apply(self):
        tree = parse_tree("a(b(c), d)")
        context = context_of(tree, (0,))
        assert context.apply(parse_tree("b(x, y)")) == parse_tree("a(b(x, y), d)")

    def test_apply_wrong_root_label_rejected(self):
        context = context_of(parse_tree("a(b)"), (0,))
        with pytest.raises(ReproError):
            context.apply(parse_tree("z"))

    def test_apply_restores_original(self):
        tree = parse_tree("a(b(c), d)")
        context = context_of(tree, (0,))
        assert context.apply(tree.subtree((0,))) == tree

    def test_root_context(self):
        tree = parse_tree("a(b)")
        context = context_of(tree, ())
        assert context.hole_symbol == "a"
        assert context.apply(parse_tree("a(x)")) == parse_tree("a(x)")

    def test_compose(self):
        outer = context_of(parse_tree("a(b)"), (0,))       # a([b])
        inner = context_of(parse_tree("b(c)"), (0,))       # b([c])
        combined = outer.compose(inner)
        assert combined.hole_symbol == "c"
        assert combined.apply(parse_tree("c(z)")) == parse_tree("a(b(c(z)))")

    def test_compose_label_mismatch_rejected(self):
        outer = context_of(parse_tree("a(b)"), (0,))
        inner = context_of(parse_tree("c(d)"), (0,))
        with pytest.raises(ReproError):
            outer.compose(inner)

    def test_spine_labels(self):
        context = context_of(parse_tree("a(b(c), d)"), (0, 0))
        assert context.spine_labels() == ("a", "b", "c")

    def test_hole_must_be_hole_labeled(self):
        with pytest.raises(ReproError):
            Context(parse_tree("a(b)"), (0,))

    def test_hole_must_be_leaf(self):
        bad = Tree("a", [Tree(HoleLabel("b"), [Tree("c")])])
        with pytest.raises(ReproError):
            Context(bad, (0,))

    def test_is_context_tree(self):
        good = context_of(parse_tree("a(b)"), (0,)).tree
        assert is_context_tree(good)
        assert not is_context_tree(parse_tree("a(b)"))

    def test_contexts_with_same_shape_equal(self):
        c1 = context_of(parse_tree("a(b(c), d)"), (0,))
        c2 = context_of(parse_tree("a(b(zzz), d)"), (0,))
        assert c1 == c2  # subtrees below the hole are dropped


class TestFork:
    def test_fork_of(self):
        fork = fork_of(parse_tree("a(b(x), c)"), ())
        assert fork == Fork("a", "b", "c")

    def test_fork_of_non_binary_rejected(self):
        with pytest.raises(ReproError):
            fork_of(parse_tree("a(b)"), ())

    def test_apply(self):
        fork = Fork("a", "b", "c")
        result = fork.apply(parse_tree("b(x)"), parse_tree("c"))
        assert result == parse_tree("a(b(x), c)")

    def test_apply_label_mismatch(self):
        fork = Fork("a", "b", "c")
        with pytest.raises(ReproError):
            fork.apply(parse_tree("z"), parse_tree("c"))
        with pytest.raises(ReproError):
            fork.apply(parse_tree("b"), parse_tree("z"))

    def test_str(self):
        assert str(Fork("a", "b", "c")) == "a([b], [c])"
