"""Tests for the flat struct-of-arrays tree representation (PR 7).

The arena is the substrate of every tree-side kernel walk, so its
invariants are pinned directly: BFS layout (``parent[i] < i``,
contiguous child ranges), exact round-trips, and agreement of
``paths()`` / ``anc_strings()`` / ``depth()`` with the linked
:class:`~repro.trees.tree.Tree` API — including on documents far deeper
than the recursion limit.
"""

from __future__ import annotations

import random

from repro.families.random_schemas import random_edtd
from repro.trees import ArenaTree, Tree, leaf, parse_tree
from repro.trees.generate import sample_tree


def random_tree(rng: random.Random, max_children: int = 3, budget: int = 40) -> Tree:
    """A random unranked tree with at most *budget* nodes."""
    labels = ["a", "b", "c"]

    def grow(remaining: list[int], depth: int) -> Tree:
        children = []
        if remaining[0] > 0 and depth < 6:
            for _ in range(rng.randint(0, max_children)):
                if remaining[0] <= 0:
                    break
                remaining[0] -= 1
                children.append(grow(remaining, depth + 1))
        return Tree(rng.choice(labels), children)

    return grow([budget], 0)


def deep_comb(depth: int) -> Tree:
    """A binary left comb of the given depth, built iteratively."""
    tree = leaf("p")
    for _ in range(depth - 1):
        tree = Tree("a", [tree, leaf("p")])
    return tree


class TestLayout:
    def test_bfs_invariants_random(self):
        rng = random.Random(20260808)
        for _ in range(50):
            tree = random_tree(rng)
            arena = ArenaTree.from_tree(tree)
            assert len(arena) == tree.size()
            assert arena.parent[0] == -1
            for index in range(1, len(arena)):
                assert arena.parent[index] < index
            for index in range(len(arena)):
                for child in arena.children(index):
                    assert arena.parent[child] == index
                assert len(arena.children(index)) == arena.n_children[index]

    def test_label_coding_is_consistent(self):
        arena = ArenaTree.from_tree(parse_tree("a(b(a), c, b)"))
        for index, label in arena.iter_nodes():
            code = arena.codes[index]
            assert arena.label_table[code] == label
            assert arena.label_code[label] == code
        assert len(arena.label_table) == 3

    def test_bottom_up_visits_children_first(self):
        rng = random.Random(7)
        tree = random_tree(rng)
        arena = ArenaTree.from_tree(tree)
        seen: set[int] = set()
        for index in arena.bottom_up():
            for child in arena.children(index):
                assert child in seen
            seen.add(index)
        assert seen == set(range(len(arena)))

    def test_is_binary(self):
        assert ArenaTree.from_tree(deep_comb(5)).is_binary()
        assert ArenaTree.from_tree(leaf("a")).is_binary()
        assert not ArenaTree.from_tree(parse_tree("a(b)")).is_binary()
        assert not ArenaTree.from_tree(parse_tree("a(b, c, d)")).is_binary()


class TestRoundTrip:
    def test_random_trees(self):
        rng = random.Random(13)
        for _ in range(60):
            tree = random_tree(rng)
            assert ArenaTree.from_tree(tree).to_tree() == tree

    def test_sampled_member_trees(self):
        rng = random.Random(99)
        for _ in range(10):
            schema = random_edtd(rng)
            tree = sample_tree(schema, rng, target_size=30)
            assert ArenaTree.from_tree(tree).to_tree() == tree

    def test_single_node(self):
        tree = leaf("x")
        arena = ArenaTree.from_tree(tree)
        assert len(arena) == 1
        assert arena.to_tree() == tree
        assert arena.paths() == [()]
        assert arena.anc_strings() == [("x",)]
        assert arena.depth() == 1


class TestTreeAgreement:
    def test_paths_and_anc_strings_match_tree(self):
        rng = random.Random(31)
        for _ in range(40):
            tree = random_tree(rng)
            arena = ArenaTree.from_tree(tree)
            paths = arena.paths()
            ancs = arena.anc_strings()
            expected = {path: node for path, node in tree.nodes()}
            assert set(paths) == set(expected)
            for index, path in enumerate(paths):
                assert arena.labels[index] == expected[path].label
                assert ancs[index] == tree.anc_str(path)

    def test_depth_matches_tree(self):
        rng = random.Random(47)
        for _ in range(40):
            tree = random_tree(rng)
            assert ArenaTree.from_tree(tree).depth() == tree.depth()


class TestDeepDocuments:
    """Everything on the arena is iterative: documents deeper than the
    recursion limit must flatten, walk, and rebuild without blowing the
    stack (the linked-Tree equality/repr would recurse, so the round
    trip is checked structurally)."""

    DEPTH = 4000

    def test_deep_comb_round_trip(self):
        arena = ArenaTree.from_tree(deep_comb(self.DEPTH))
        assert arena.depth() == self.DEPTH
        assert len(arena) == 2 * self.DEPTH - 1
        rebuilt = ArenaTree.from_tree(arena.to_tree())
        assert rebuilt.labels == arena.labels
        assert rebuilt.parent == arena.parent

    def test_deep_paths_share_prefixes(self):
        arena = ArenaTree.from_tree(deep_comb(self.DEPTH))
        paths = arena.paths()
        ancs = arena.anc_strings()
        assert max(len(path) for path in paths) == self.DEPTH - 1
        assert max(len(anc) for anc in ancs) == self.DEPTH
        deepest = max(range(len(arena)), key=lambda i: len(paths[i]))
        assert paths[deepest] == (0,) * (self.DEPTH - 1)
        assert ancs[deepest] == ("a",) * (self.DEPTH - 1) + ("p",)
