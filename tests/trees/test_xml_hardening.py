"""Hostile-input hardening of :func:`repro.trees.xml_io.from_xml`.

``from_xml`` feeds ``repro validate`` with untrusted documents, so it
must reject DTD/entity declarations (billion-laughs amplification),
bound nesting depth and node count, and locate every rejection with
1-based line/column coordinates.
"""

from __future__ import annotations

import pytest

from repro.errors import TreeSyntaxError
from repro.trees.xml_io import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_NODES,
    from_xml,
    to_xml,
)

BILLION_LAUGHS = """<!DOCTYPE lolz [
  <!ENTITY lol "lol">
  <!ENTITY lol2 "&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;">
  <!ENTITY lol3 "&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;&lol2;">
]>
<lolz>&lol3;</lolz>"""


class TestDeclarationRejection:
    def test_doctype_rejected(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml('<!DOCTYPE a><a/>')
        assert "<!DOCTYPE" in str(exc_info.value)
        assert "entity-expansion hardening" in str(exc_info.value)

    def test_billion_laughs_rejected_before_any_expansion(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml(BILLION_LAUGHS)
        error = exc_info.value
        assert "DTD and entity declarations are rejected" in str(error)
        assert error.line == 1
        assert error.column == 1

    def test_entity_declaration_rejected(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml('<a><!ENTITY x "y"></a>')
        assert "<!ENTITY" in str(exc_info.value)

    def test_internal_subset_bracket_rejected(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<![CDATA[boom]]>")

    def test_comment_gets_specific_message(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml("<a><!-- hi --></a>")
        assert "comments are not supported" in str(exc_info.value)

    def test_processing_instruction_rejected(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml('<?xml version="1.0"?><a/>')
        assert "processing instructions" in str(exc_info.value)


class TestDepthAndNodeLimits:
    def test_default_depth_limit(self):
        deep = "<a>" * (DEFAULT_MAX_DEPTH + 1) + "</a>" * (DEFAULT_MAX_DEPTH + 1)
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml(deep)
        assert f"maximum element depth exceeded ({DEFAULT_MAX_DEPTH})" in str(
            exc_info.value
        )

    def test_depth_at_limit_is_fine(self):
        text = "<a>" * 10 + "</a>" * 10
        tree = from_xml(text, max_depth=10)
        depth = 0
        node = tree
        while node.children:
            depth += 1
            node = node.children[0]
        assert depth == 9

    def test_depth_just_over_custom_limit(self):
        text = "<a>" * 11 + "</a>" * 11
        with pytest.raises(TreeSyntaxError):
            from_xml(text, max_depth=10)

    def test_self_closing_counts_toward_depth(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<a><b/></a>", max_depth=1)

    def test_node_count_limit(self):
        text = "<a>" + "<b/>" * 10 + "</a>"
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml(text, max_nodes=5)
        assert "maximum node count exceeded (5)" in str(exc_info.value)

    def test_node_count_at_limit_is_fine(self):
        text = "<a>" + "<b/>" * 9 + "</a>"
        tree = from_xml(text, max_nodes=10)
        assert len(tree.children) == 9

    def test_limits_disabled_with_none(self):
        deep = "<a>" * 300 + "</a>" * 300
        tree = from_xml(deep, max_depth=None)
        assert tree.label == "a"
        wide = "<a>" + "<b/>" * 20 + "</a>"
        assert len(from_xml(wide, max_nodes=None).children) == 20

    def test_default_node_limit_exists(self):
        assert DEFAULT_MAX_NODES == 100_000


class TestErrorPositions:
    def test_mismatched_tag_position(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml("<a>\n  <b>\n  </c>\n</a>")
        error = exc_info.value
        assert error.line == 3
        assert error.column == 3
        assert "(line 3, column 3)" in str(error)

    def test_doctype_position_mid_document(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml("<a>\n<!DOCTYPE x>\n</a>")
        assert exc_info.value.line == 2
        assert exc_info.value.column == 1

    def test_unclosed_element_position_at_eof(self):
        text = "<a>\n<b>"
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml(text)
        assert "unclosed element <b>" in str(exc_info.value)
        assert exc_info.value.line == 2

    def test_content_after_root_position(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml("<a/><b/>")
        assert exc_info.value.column == 5

    def test_text_content_position(self):
        with pytest.raises(TreeSyntaxError) as exc_info:
            from_xml("<a>hello</a>")
        assert exc_info.value.line == 1
        assert exc_info.value.column == 4


class TestBenignInputStillWorks:
    def test_roundtrip(self):
        from repro.trees.tree import parse_tree

        tree = parse_tree("store(item(price), item(price, note))")
        assert from_xml(to_xml(tree)) == tree

    def test_defaults_admit_realistic_documents(self):
        text = "<r>" + "<x/>" * 500 + "</r>"
        assert len(from_xml(text).children) == 500
