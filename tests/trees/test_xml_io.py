"""Tests for XML serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TreeSyntaxError
from repro.trees.tree import Tree, parse_tree
from repro.trees.xml_io import from_xml, to_xml


class TestToXml:
    def test_leaf_self_closes(self):
        assert to_xml(parse_tree("a")) == "<a/>"

    def test_nested(self):
        assert to_xml(parse_tree("a(b, c)")) == "<a>\n  <b/>\n  <c/>\n</a>"

    def test_indentation(self):
        text = to_xml(parse_tree("a(b(c))"), indent=4)
        assert "    <b>" in text
        assert "        <c/>" in text


class TestFromXml:
    def test_self_closing_root(self):
        assert from_xml("<a/>") == parse_tree("a")

    def test_nested(self):
        assert from_xml("<a><b/><c><d/></c></a>") == parse_tree("a(b, c(d))")

    def test_whitespace_tolerant(self):
        assert from_xml("  <a>\n  <b/>\n</a>  ") == parse_tree("a(b)")

    def test_hyphen_dot_names(self):
        tree = from_xml("<order-list><item.x/></order-list>")
        assert tree.label == "order-list"

    def test_mismatched_tags(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<a></b>")

    def test_unclosed(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<a><b/>")

    def test_stray_close(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("</a>")

    def test_text_content_rejected(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<a>hello</a>")

    def test_attributes_rejected(self):
        with pytest.raises(TreeSyntaxError):
            from_xml('<a id="1"/>')

    def test_content_after_root(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("<a/><b/>")

    def test_empty_input(self):
        with pytest.raises(TreeSyntaxError):
            from_xml("   ")


def xml_trees():
    labels = st.sampled_from(["a", "b", "item", "x_1"])
    return st.recursive(
        st.builds(Tree, labels),
        lambda children: st.builds(
            Tree, labels, st.lists(children, min_size=1, max_size=3)
        ),
        max_leaves=10,
    )


@settings(max_examples=60, deadline=None)
@given(xml_trees())
def test_round_trip(tree):
    assert from_xml(to_xml(tree)) == tree
