"""Property-based fuzz of the hardened ``from_xml`` parser.

The contract under fuzz (complements the example-based
``test_xml_hardening.py``):

* **total over hostile input** — for arbitrary text, including malformed
  entities, truncated markup, NULs, and deep nesting, only
  :class:`TreeSyntaxError` (taxonomy) may escape — never ``IndexError``,
  ``RecursionError``, ``AttributeError``, or a hang;
* **round-trip identity** — for every well-formed tree,
  ``from_xml(to_xml(t)) == t``, and any *strict prefix* of the rendered
  document fails to parse (the property the chaos harness's truncate
  fault relies on);
* **limit boundaries** — documents straddling ``max_depth``/``max_nodes``
  split exactly at the cap, and errors carry 1-based positions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError, TreeSyntaxError
from repro.trees.tree import Tree
from repro.trees.xml_io import from_xml, to_xml
from tests.strategies import examples, hostile_documents, trees


# ----------------------------------------------------------------------
# Totality: only taxonomy errors escape
# ----------------------------------------------------------------------

@given(hostile_documents)
@settings(max_examples=examples(300), deadline=None)
def test_arbitrary_text_parses_or_raises_taxonomy(text):
    try:
        tree = from_xml(text)
    except TreeSyntaxError as error:
        assert isinstance(error, ReproError)
        assert error.line >= 1 and error.column >= 1
    else:
        assert isinstance(tree, Tree)
        # Anything accepted must re-render to a parseable document.
        assert from_xml(to_xml(tree)) == tree


@given(hostile_documents, st.integers(min_value=1, max_value=12))
@settings(max_examples=examples(120), deadline=None)
def test_tiny_limits_never_crash(text, cap):
    try:
        from_xml(text, max_depth=cap, max_nodes=cap)
    except TreeSyntaxError:
        pass


# ----------------------------------------------------------------------
# Round trip and the strict-prefix property
# ----------------------------------------------------------------------

@given(trees)
@settings(max_examples=examples(150), deadline=None)
def test_round_trip_identity(tree):
    assert from_xml(to_xml(tree)) == tree


@given(trees, st.data())
@settings(max_examples=examples(150), deadline=None)
def test_any_strict_prefix_fails_to_parse(tree, data):
    document = to_xml(tree)
    cut = data.draw(st.integers(min_value=0, max_value=len(document) - 1))
    with pytest.raises(TreeSyntaxError):
        from_xml(document[:cut])


@given(trees)
@settings(max_examples=examples(60), deadline=None)
def test_interior_nul_corruption_fails_to_parse(tree):
    # The chaos harness's corrupt fault writes a NUL somewhere in the
    # document; the tokenizer must reject it wherever it lands.
    document = to_xml(tree)
    for pos in range(0, len(document), max(1, len(document) // 7)):
        damaged = document[:pos] + "\x00" + document[pos + 1:]
        with pytest.raises(TreeSyntaxError):
            from_xml(damaged)


# ----------------------------------------------------------------------
# Limit boundaries, exactly at the cap
# ----------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=examples(40), deadline=None)
def test_depth_cap_is_exact(depth):
    chain = "".join(f"<n{i}>" for i in range(depth)) + "".join(
        f"</n{i}>" for i in reversed(range(depth))
    )
    assert from_xml(chain, max_depth=depth).size() == depth
    with pytest.raises(TreeSyntaxError, match="depth"):
        from_xml(chain, max_depth=depth - 1)


@given(st.integers(min_value=1, max_value=60))
@settings(max_examples=examples(40), deadline=None)
def test_node_cap_is_exact(nodes):
    flat = "<root>" + "<leaf/>" * (nodes - 1) + "</root>" if nodes > 1 else "<root/>"
    assert from_xml(flat, max_nodes=nodes).size() == nodes
    with pytest.raises(TreeSyntaxError, match="node count"):
        from_xml(flat, max_nodes=nodes - 1)


@given(trees)
@settings(max_examples=examples(60), deadline=None)
def test_unlimited_mode_accepts_what_limited_mode_accepts(tree):
    document = to_xml(tree)
    assert from_xml(document, max_depth=None, max_nodes=None) == from_xml(document)
