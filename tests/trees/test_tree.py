"""Unit tests for repro.trees.tree."""

from __future__ import annotations

import pytest

from repro.errors import TreeSyntaxError
from repro.trees.tree import Tree, leaf, parse_tree, unary_tree


class TestParsing:
    def test_leaf(self):
        assert parse_tree("a") == Tree("a")

    def test_nested(self):
        assert parse_tree("a(b, c(d))") == Tree(
            "a", [Tree("b"), Tree("c", [Tree("d")])]
        )

    def test_identifiers(self):
        tree = parse_tree("store(item_1)")
        assert tree.label == "store"
        assert tree.children[0].label == "item_1"

    def test_str_round_trip(self):
        for source in ["a", "a(b)", "a(b, c)", "a(b(c, d), e(f))"]:
            assert str(parse_tree(source)) == source

    def test_missing_close(self):
        with pytest.raises(TreeSyntaxError):
            parse_tree("a(b")

    def test_trailing_garbage(self):
        with pytest.raises(TreeSyntaxError):
            parse_tree("a b")

    def test_empty_input(self):
        with pytest.raises(TreeSyntaxError):
            parse_tree("")

    def test_bad_token(self):
        with pytest.raises(TreeSyntaxError):
            parse_tree("a(,b)")


class TestStructure:
    def test_dom_preorder(self):
        tree = parse_tree("a(b, c(d))")
        assert list(tree.dom()) == [(), (0,), (1,), (1, 0)]

    def test_dom_bfs(self):
        tree = parse_tree("a(b(d), c)")
        assert list(tree.dom_bfs()) == [(), (0,), (1,), (0, 0)]

    def test_subtree(self):
        tree = parse_tree("a(b, c(d))")
        assert tree.subtree((1,)) == parse_tree("c(d)")
        assert tree.subtree(()) == tree

    def test_label_at(self):
        tree = parse_tree("a(b, c(d))")
        assert tree.label_at((1, 0)) == "d"

    def test_ch_str(self):
        tree = parse_tree("a(b, c(d))")
        assert tree.ch_str() == ("b", "c")
        assert tree.ch_str((1,)) == ("d",)
        assert tree.ch_str((0,)) == ()

    def test_anc_str_includes_node(self):
        tree = parse_tree("a(b, c(d))")
        assert tree.anc_str((1, 0)) == ("a", "c", "d")
        assert tree.anc_str(()) == ("a",)

    def test_depth_per_paper(self):
        # A root-only tree has depth 1 (Section 2.1).
        assert parse_tree("a").depth() == 1
        assert parse_tree("a(b)").depth() == 2
        assert parse_tree("a(b, c(d))").depth() == 3

    def test_size(self):
        assert parse_tree("a(b, c(d))").size() == 4

    def test_labels(self):
        assert parse_tree("a(b, a(c))").labels() == {"a", "b", "c"}

    def test_nodes_iteration(self):
        tree = parse_tree("a(b)")
        pairs = dict(tree.nodes())
        assert pairs[()] == tree
        assert pairs[(0,)] == Tree("b")


class TestModification:
    def test_replace_at_root(self):
        tree = parse_tree("a(b)")
        assert tree.replace_at((), Tree("z")) == Tree("z")

    def test_replace_at_inner(self):
        tree = parse_tree("a(b, c)")
        replaced = tree.replace_at((1,), parse_tree("x(y)"))
        assert replaced == parse_tree("a(b, x(y))")

    def test_replace_does_not_mutate(self):
        tree = parse_tree("a(b)")
        tree.replace_at((0,), Tree("z"))
        assert tree == parse_tree("a(b)")

    def test_map_labels(self):
        tree = parse_tree("a(b)")
        assert tree.map_labels(str.upper) == Tree("A", [Tree("B")])


class TestUnary:
    def test_unary_tree(self):
        assert unary_tree("ab") == parse_tree("a(b)")

    def test_unary_tree_single(self):
        assert unary_tree("a") == leaf("a")

    def test_unary_tree_empty_rejected(self):
        with pytest.raises(ValueError):
            unary_tree("")

    def test_to_word_round_trip(self):
        assert unary_tree("aabab").to_word() == tuple("aabab")

    def test_to_word_rejects_branching(self):
        with pytest.raises(ValueError):
            parse_tree("a(b, c)").to_word()

    def test_is_unary(self):
        assert unary_tree("aaa").is_unary()
        assert not parse_tree("a(b, c)").is_unary()


class TestEqualityHashing:
    def test_equal_trees_hash_equal(self):
        assert hash(parse_tree("a(b, c)")) == hash(parse_tree("a(b, c)"))

    def test_unequal_children_order(self):
        assert parse_tree("a(b, c)") != parse_tree("a(c, b)")

    def test_usable_in_sets(self):
        trees = {parse_tree("a"), parse_tree("a"), parse_tree("a(b)")}
        assert len(trees) == 2

    def test_non_tree_comparison(self):
        assert parse_tree("a") != "a"
