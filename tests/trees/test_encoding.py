"""Tests for the binary encoding (Fig. 3 variant)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.strings.builders import sigma_star
from repro.trees.encoding import MARKER, decode, encode, is_binary, lift_dfa_with_marker
from repro.trees.tree import Tree, parse_tree


def random_trees():
    labels = st.sampled_from(["a", "b", "c"])
    return st.recursive(
        st.builds(Tree, labels),
        lambda children: st.builds(
            Tree, labels, st.lists(children, min_size=1, max_size=3)
        ),
        max_leaves=12,
    )


class TestEncode:
    def test_leaf(self):
        assert encode(parse_tree("a")) == Tree("a")

    def test_single_child(self):
        assert encode(parse_tree("a(b)")) == parse_tree("a(b)").__class__(
            "a", [Tree("b"), Tree(MARKER)]
        )

    def test_two_children_structure(self):
        encoded = encode(parse_tree("a(b, c)"))
        assert encoded.label == "a"
        chain, end = encoded.children
        assert end == Tree(MARKER)
        assert chain.label == MARKER
        assert chain.children[0] == Tree("b")
        assert chain.children[1] == Tree("c")

    def test_result_is_binary(self):
        for source in ["a", "a(b)", "a(b, c, d)", "a(b(c, d), e)"]:
            assert is_binary(encode(parse_tree(source))), source

    def test_marker_label_in_input_rejected(self):
        with pytest.raises(ReproError):
            encode(Tree(MARKER))

    def test_sigma_subtree_correspondence(self):
        # Every Sigma-labeled subtree of the encoding decodes to a subtree
        # of the original (the property plain FCNS lacks).
        tree = parse_tree("a(b(c, d), e(f))")
        original_subtrees = {node for _, node in tree.nodes()}
        encoded = encode(tree)
        for _, node in encoded.nodes():
            if node.label != MARKER:
                assert decode(node) in original_subtrees, node


class TestDecode:
    @pytest.mark.parametrize(
        "source",
        ["a", "a(b)", "a(b, c)", "a(b, c, d, e)", "a(b(c), d(e(f, g), h))"],
    )
    def test_round_trip(self, source):
        tree = parse_tree(source)
        assert decode(encode(tree)) == tree

    def test_decode_marker_root_rejected(self):
        with pytest.raises(ReproError):
            decode(Tree(MARKER))

    def test_decode_bad_arity_rejected(self):
        with pytest.raises(ReproError):
            decode(Tree("a", [Tree("b")]))

    def test_decode_missing_end_marker_rejected(self):
        with pytest.raises(ReproError):
            decode(Tree("a", [Tree("b"), Tree("c")]))

    @settings(max_examples=80, deadline=None)
    @given(random_trees())
    def test_round_trip_random(self, tree):
        encoded = encode(tree)
        assert is_binary(encoded)
        assert decode(encoded) == tree

    @settings(max_examples=40, deadline=None)
    @given(random_trees())
    def test_encoding_injective_size(self, tree):
        # Marker nodes: one end-marker per internal node plus one cons node
        # per extra child.
        encoded = encode(tree)
        internal = sum(1 for _, node in tree.nodes() if node.children)
        extra_children = sum(
            len(node.children) - 1 for _, node in tree.nodes() if node.children
        )
        assert encoded.size() == tree.size() + internal + extra_children


class TestLiftDFA:
    def test_marker_self_loops_added(self):
        dfa = sigma_star({"a"})
        lifted = lift_dfa_with_marker(dfa)
        assert lifted.accepts(["a", MARKER, "a", MARKER])
        assert MARKER in lifted.alphabet

    def test_original_behaviour_preserved(self):
        dfa = sigma_star({"a"})
        lifted = lift_dfa_with_marker(dfa)
        assert lifted.accepts(["a", "a"])


class TestIsBinary:
    def test_binary(self):
        assert is_binary(parse_tree("a(b, c)"))
        assert is_binary(parse_tree("a"))

    def test_not_binary(self):
        assert not is_binary(parse_tree("a(b)"))
        assert not is_binary(parse_tree("a(b, c, d)"))
