"""Contexts/forks interacting with exchange — the Fig. 2 decomposition
made testable."""

from __future__ import annotations

import pytest

from repro.closure.exchange import all_exchanges, exchange
from repro.trees.context import Context, Fork, context_of, fork_of
from repro.trees.tree import Tree, parse_tree


class TestContextExchangeInterplay:
    def test_exchange_as_context_application(self):
        """``t1[v <- subtree^t2(v2)]`` equals ``context_of(t1, v)[plug]``."""
        t1 = parse_tree("a(b(c), d)")
        t2 = parse_tree("a(b(c, c), d)")
        v = (0,)
        via_exchange = exchange(t1, v, t2, v)
        via_context = context_of(t1, v).apply(t2.subtree(v))
        assert via_exchange == via_context

    def test_closure_members_decompose_into_parts(self):
        """Every one-step exchange result is made of one context of t1 and
        one subtree of t2 — the base case of the Fig. 2 patchwork."""
        t1 = parse_tree("a(b, b(c))")
        t2 = parse_tree("a(b(c, c), b)")
        contexts_of_t1 = {context_of(t1, v) for v in t1.dom()}
        subtrees_of_t2 = {t2.subtree(v) for v in t2.dom()}
        for result in all_exchanges(t1, t2):
            decomposed = any(
                context.hole_symbol == plug.label
                and context.apply(plug) == result
                for context in contexts_of_t1
                for plug in subtrees_of_t2
            )
            assert decomposed, result

    def test_context_composition_associates_with_application(self):
        outer = context_of(parse_tree("a(b, c)"), (1,))       # a(b, [c])
        inner = context_of(parse_tree("c(d(e))"), (0,))       # c([d])
        plug = parse_tree("d(e, e)")
        assert outer.compose(inner).apply(plug) == outer.apply(inner.apply(plug))

    def test_fork_decomposes_binary_node(self):
        tree = parse_tree("a(b(c), d)")
        fork = fork_of(tree, ())
        rebuilt = fork.apply(tree.subtree((0,)), tree.subtree((1,)))
        assert rebuilt == tree

    def test_forks_plus_contexts_rebuild_generalized_contexts(self):
        """Lemma 4.18's statement on a concrete instance: a 2-hole tree is
        a fork with a context plugged into one hole."""
        # Generalized context: a( b(c, [d]), [e] ) — two holes.
        fork = Fork("a", "b", "e")
        left_context = context_of(parse_tree("b(c, d)"), (1,))   # b(c, [d])
        # Plug the two holes and compare against direct construction.
        d_plug = parse_tree("d(x)")
        e_plug = parse_tree("e")
        assembled = fork.apply(left_context.apply(d_plug), e_plug)
        assert assembled == parse_tree("a(b(c, d(x)), e)")

    def test_hole_label_equality_is_part_of_context_identity(self):
        c1 = context_of(parse_tree("a(b)"), (0,))
        c2 = context_of(parse_tree("a(c)"), (0,))
        assert c1 != c2
        assert c1 == context_of(parse_tree("a(b(c, d))"), (0,))
