"""Tests for enumeration / counting / sampling of EDTD languages."""

from __future__ import annotations

import random

import pytest

from repro.errors import SchemaError
from repro.schemas.edtd import EDTD
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.generate import (
    count_trees_by_size,
    count_trees_exact,
    enumerate_all_trees,
    enumerate_trees,
    min_derivation_sizes,
    sample_tree,
)
from repro.trees.tree import parse_tree


class TestEnumerateAll:
    def test_catalan_counts_single_label(self):
        # Ordered trees with n nodes over one label: Catalan(n-1).
        universe = enumerate_all_trees({"a"}, 5)
        by_size = {}
        for tree in universe:
            by_size[tree.size()] = by_size.get(tree.size(), 0) + 1
        assert by_size == {1: 1, 2: 1, 3: 2, 4: 5, 5: 14}

    def test_two_labels_count(self):
        # n-node trees over k labels: Catalan(n-1) * k^n.
        universe = enumerate_all_trees({"a", "b"}, 3)
        by_size = {}
        for tree in universe:
            by_size[tree.size()] = by_size.get(tree.size(), 0) + 1
        assert by_size == {1: 2, 2: 4, 3: 16}

    def test_no_duplicates(self):
        universe = enumerate_all_trees({"a", "b"}, 4)
        assert len(universe) == len(set(universe))


class TestEnumerateEDTD:
    def test_members_only(self, store_schema):
        for tree in enumerate_trees(store_schema, 7):
            assert store_schema.accepts(tree)

    def test_exhaustive(self, ab_star_schema, ab_universe_4):
        enumerated = set(enumerate_trees(ab_star_schema, 4))
        expected = {t for t in ab_universe_4 if ab_star_schema.accepts(t)}
        assert enumerated == expected

    def test_empty_language(self):
        empty = EDTD(alphabet={"a"}, types=set(), rules={}, starts=set(), mu={})
        assert enumerate_trees(empty, 5) == []

    def test_sorted_by_size(self, store_schema):
        sizes = [t.size() for t in enumerate_trees(store_schema, 9)]
        assert sizes == sorted(sizes)

    def test_ambiguous_edtd_no_duplicates(self):
        # Both types derive the same trees; enumeration must dedupe.
        edtd = EDTD(
            alphabet={"a"},
            types={"t1", "t2"},
            rules={"t1": "~", "t2": "~"},
            starts={"t1", "t2"},
            mu={"t1": "a", "t2": "a"},
        )
        assert enumerate_trees(edtd, 3) == [parse_tree("a")]


class TestCounting:
    def test_matches_enumeration_single_type(self, store_schema):
        counts = count_trees_by_size(store_schema, 9)
        by_size = [0] * 10
        for tree in enumerate_trees(store_schema, 9):
            by_size[tree.size()] += 1
        assert counts == by_size

    def test_matches_enumeration_ambiguous(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"t1", "t2"},
            rules={"t1": "t2?", "t2": "t1?"},
            starts={"t1", "t2"},
            mu={"t1": "a", "t2": "a"},
        )
        assert count_trees_by_size(edtd, 4) == count_trees_exact(edtd, 4)

    def test_universal_counts_are_catalan(self):
        universal = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t*"},
            starts={"t"},
            mu={"t": "a"},
        )
        assert count_trees_by_size(universal, 5) == [0, 1, 1, 2, 5, 14]


class TestSampling:
    def test_samples_are_members(self, store_schema, rng):
        for _ in range(20):
            tree = sample_tree(store_schema, rng, target_size=10)
            assert store_schema.accepts(tree)

    def test_sampling_recursive_schema_terminates(self, rng):
        deep = SingleTypeEDTD(
            alphabet={"a"},
            types={"t"},
            rules={"t": "t | (t, t) | ~"},
            starts={"t"},
            mu={"t": "a"},
        )
        for _ in range(20):
            tree = sample_tree(deep, rng, target_size=15)
            assert deep.accepts(tree)
            assert tree.size() <= 200  # budget steering keeps sizes sane

    def test_sampling_empty_language_raises(self, rng):
        empty = EDTD(alphabet={"a"}, types=set(), rules={}, starts=set(), mu={})
        with pytest.raises(SchemaError):
            sample_tree(empty, rng)

    def test_seeded_determinism(self, store_schema):
        t1 = sample_tree(store_schema, random.Random(5), target_size=12)
        t2 = sample_tree(store_schema, random.Random(5), target_size=12)
        assert t1 == t2

    def test_mandatory_children_sampled(self, rng):
        # i requires exactly one p child; samples must honour that.
        schema = SingleTypeEDTD(
            alphabet={"r", "i", "p"},
            types={"tr", "ti", "tp"},
            rules={"tr": "ti+", "ti": "tp", "tp": "~"},
            starts={"tr"},
            mu={"tr": "r", "ti": "i", "tp": "p"},
        )
        tree = sample_tree(schema, rng, target_size=9)
        assert schema.accepts(tree)


class TestMinDerivationSizes:
    def test_simple_chain(self, store_schema):
        sizes = min_derivation_sizes(store_schema)
        assert sizes["p"] == 1
        assert sizes["i"] == 2
        assert sizes["s"] == 1  # i* allows zero items

    def test_unproductive_type(self):
        edtd = EDTD(
            alphabet={"a"},
            types={"t", "loop"},
            rules={"t": "~", "loop": "loop"},
            starts={"t"},
            mu={"t": "a", "loop": "a"},
        )
        sizes = min_derivation_sizes(edtd)
        assert sizes["t"] == 1
        assert sizes["loop"] == -1
