"""Cross-cutting randomized invariants over the whole pipeline.

Each test draws seeded random schemas and checks a semantic identity that
ties several subsystems together (constructions vs exact tree-automata
decisions vs bounded enumeration).
"""

from __future__ import annotations

import random

import pytest

from repro.core.lower import maximal_lower_union, non_violating
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)
from repro.families.random_schemas import random_edtd, random_single_type_edtd
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import complement_edtd, difference_edtd, edtd_union
from repro.schemas.type_automaton import is_single_type
from repro.tree_automata.inclusion import edtd_equivalent, edtd_includes
from repro.trees.generate import enumerate_all_trees, enumerate_trees, sample_tree

SEEDS = range(6)


@pytest.mark.parametrize("seed", SEEDS)
def test_upper_is_least_among_st_upper_bounds(seed):
    """Any single-type language containing L(D) contains L(upper(D))."""
    rng = random.Random(9000 + seed)
    edtd = random_edtd(rng, num_labels=2, num_types=4)
    other = random_single_type_edtd(rng, num_labels=2, num_types=4)
    upper = minimal_upper_approximation(edtd)
    if included_in_single_type(edtd, other):
        assert included_in_single_type(upper, other), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_upper_monotone(seed):
    """L(A) subseteq L(B) implies L(upper(A)) subseteq L(upper(B))."""
    rng = random.Random(9100 + seed)
    a = random_edtd(rng, num_labels=2, num_types=3)
    b = edtd_union(a, random_edtd(rng, num_labels=2, num_types=3))
    upper_a = minimal_upper_approximation(a)
    upper_b = minimal_upper_approximation(b)
    assert included_in_single_type(upper_a, upper_b), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_de_morgan_via_difference(seed):
    """A - B == A & complement(B) as exact languages."""
    rng = random.Random(9200 + seed)
    a = random_single_type_edtd(rng, num_labels=2, num_types=3)
    b = random_single_type_edtd(rng, num_labels=2, num_types=3)
    from repro.schemas.ops import edtd_intersection

    alphabet = a.alphabet | b.alphabet
    diff = difference_edtd(a, b)
    via = edtd_intersection(a, complement_edtd(_widen(b, alphabet)))
    assert edtd_equivalent(diff, via), seed


def _widen(schema, alphabet):
    """Extend a schema's alphabet (language unchanged on old labels; the
    complement is then taken over the shared alphabet)."""
    from repro.schemas.st_edtd import SingleTypeEDTD

    return SingleTypeEDTD(
        alphabet=alphabet,
        types=schema.types,
        rules=schema.rules,
        starts=schema.starts,
        mu=schema.mu,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_union_upper_equals_edtd_upper(seed):
    """upper_union(A, B) == minimal_upper_approximation(A | B)."""
    rng = random.Random(9300 + seed)
    a = random_single_type_edtd(rng, num_labels=2, num_types=3)
    b = random_single_type_edtd(rng, num_labels=2, num_types=3)
    assert single_type_equivalent(
        upper_union(a, b), minimal_upper_approximation(edtd_union(a, b))
    ), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_minimization_reaches_common_canonical_size(seed):
    """Equivalent schemas minimize to the same type count."""
    rng = random.Random(9400 + seed)
    a = random_single_type_edtd(rng, num_labels=2, num_types=4)
    b = upper_union(a, a)  # same language, noisier representation
    assert single_type_equivalent(a, b)
    assert len(minimize_single_type(a).types) == len(minimize_single_type(b).types)


@pytest.mark.parametrize("seed", SEEDS)
def test_lower_union_between_d1_and_union(seed):
    """L(D1) subseteq maximal_lower subseteq L(D1) | L(D2)."""
    rng = random.Random(9500 + seed)
    d1 = random_single_type_edtd(rng, num_labels=2, num_types=3)
    d2 = random_single_type_edtd(rng, num_labels=2, num_types=3)
    lower = maximal_lower_union(d1, d2)
    union = edtd_union(d1, d2)
    assert included_in_single_type(d1, lower), seed
    assert edtd_includes(union, lower), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_nv_members_extensionally_non_violating(seed):
    """Every bounded nv member survives closure with every bounded
    D1-member (Definition 4.4, brute force)."""
    from repro.closure.closure import closure_of_pair

    rng = random.Random(9600 + seed)
    d1 = random_single_type_edtd(rng, num_labels=2, num_types=3)
    d2 = random_single_type_edtd(rng, num_labels=2, num_types=3)
    union = edtd_union(d1, d2)
    nv = non_violating(d2, d1)
    for tree in enumerate_trees(nv, 4)[:6]:
        for member in enumerate_trees(d1, 4)[:6]:
            for result in closure_of_pair(member, tree, max_size=6):
                assert union.accepts(result), (seed, tree, member, result)


@pytest.mark.parametrize("seed", SEEDS)
def test_complement_partitions_bounded_universe(seed):
    rng = random.Random(9700 + seed)
    schema = random_single_type_edtd(rng, num_labels=2, num_types=3)
    comp = complement_edtd(schema)
    for tree in enumerate_all_trees(schema.alphabet, 4):
        assert comp.accepts(tree) != schema.accepts(tree), (seed, tree)


@pytest.mark.parametrize("seed", SEEDS)
def test_sampled_members_accepted_by_upper(seed):
    rng = random.Random(9800 + seed)
    edtd = random_edtd(rng, num_labels=3, num_types=4)
    upper = minimal_upper_approximation(edtd)
    for _ in range(5):
        tree = sample_tree(edtd, rng, target_size=10)
        assert edtd.accepts(tree)
        assert upper.accepts(tree), (seed, tree)


@pytest.mark.parametrize("seed", SEEDS)
def test_intersection_commutes(seed):
    rng = random.Random(9900 + seed)
    a = random_single_type_edtd(rng, num_labels=2, num_types=3)
    b = random_single_type_edtd(rng, num_labels=2, num_types=3)
    assert single_type_equivalent(
        upper_intersection(a, b), upper_intersection(b, a)
    ), seed


@pytest.mark.parametrize("seed", SEEDS)
def test_schema_with_upper_complement_covers_universe(seed):
    """L(D) | L(upper_complement(D)) is universal — the approximation can
    only *add* documents to the exact complement."""
    from repro.tree_automata.inclusion import edtd_universal

    rng = random.Random(10000 + seed)
    schema = random_single_type_edtd(rng, num_labels=2, num_types=3)
    covered = edtd_union(schema, upper_complement(schema))
    assert edtd_universal(covered), seed
