"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.schemas.inclusion import single_type_equivalent
from repro.schemas.text_format import dumps, load_file

ORDERS = """
start: o
o [order] -> i+
i [item]  -> p
p [price] -> ~
"""

RETURNS = """
start: o
o [order] -> i*
i [item]  -> r
r [reason] -> ~
"""

RELAXNG = """
start: r1 r2
r1 [doc] -> x+
r2 [doc] -> y+
x [sec] -> ~
y [sec] -> y?
"""


@pytest.fixture
def schemas(tmp_path):
    a = tmp_path / "a.schema"
    b = tmp_path / "b.schema"
    g = tmp_path / "g.schema"
    a.write_text(ORDERS)
    b.write_text(RETURNS)
    g.write_text(RELAXNG)
    return tmp_path, str(a), str(b), str(g)


class TestInfoValidate:
    def test_info(self, schemas, capsys):
        _, a, _, _ = schemas
        assert main(["info", a]) == 0
        out = capsys.readouterr().out
        assert "types:        3" in out
        assert "single-type:  True" in out

    def test_info_non_single_type(self, schemas, capsys):
        _, _, _, g = schemas
        assert main(["info", g]) == 0
        out = capsys.readouterr().out
        assert "single-type:  False" in out
        assert "ST-definable:" in out

    def test_validate_ok(self, schemas, tmp_path, capsys):
        _, a, _, _ = schemas
        doc = tmp_path / "doc.xml"
        doc.write_text("<order><item><price/></item></order>")
        assert main(["validate", a, str(doc)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_invalid(self, schemas, tmp_path, capsys):
        _, a, _, _ = schemas
        doc = tmp_path / "doc.xml"
        doc.write_text("<order/>")
        assert main(["validate", a, str(doc)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_missing_file_is_error(self, capsys):
        assert main(["info", "/nonexistent/x.schema"]) == 2
        assert "error:" in capsys.readouterr().err


class TestOperations:
    def test_union_writes_schema(self, schemas, tmp_path):
        _, a, b, _ = schemas
        out = tmp_path / "union.schema"
        assert main(["union", a, b, "-o", str(out)]) == 0
        merged = load_file(str(out))
        from repro.trees.tree import parse_tree

        assert merged.accepts(parse_tree("order(item(price), item(reason))"))

    def test_union_stdout(self, schemas, capsys):
        _, a, b, _ = schemas
        assert main(["union", a, b]) == 0
        out = capsys.readouterr().out
        assert "start:" in out and "order" in out

    def test_intersect(self, schemas, tmp_path):
        _, a, b, _ = schemas
        out = tmp_path / "meet.schema"
        assert main(["intersect", a, b, "-o", str(out)]) == 0
        meet = load_file(str(out))
        # orders requires price items, returns requires reason items:
        # the intersection is empty.
        assert meet.is_empty_language()

    def test_difference(self, schemas, tmp_path):
        _, a, b, _ = schemas
        out = tmp_path / "diff.schema"
        assert main(["difference", a, b, "-o", str(out)]) == 0
        from repro.trees.tree import parse_tree

        diff = load_file(str(out))
        assert diff.accepts(parse_tree("order(item(price))"))

    def test_complement(self, schemas, tmp_path):
        _, a, _, _ = schemas
        out = tmp_path / "comp.schema"
        assert main(["complement", a, "-o", str(out)]) == 0
        from repro.trees.tree import parse_tree

        comp = load_file(str(out))
        assert comp.accepts(parse_tree("price"))
        assert comp.accepts(parse_tree("order(item)"))
        # Note: the upper approximation of this complement legitimately
        # overshoots back into L(A) (exchange between error documents can
        # reassemble valid ones), so no negative membership is asserted.

    def test_to_xsd(self, schemas, tmp_path):
        _, _, _, g = schemas
        out = tmp_path / "xsd.schema"
        assert main(["to-xsd", g, "-o", str(out)]) == 0
        from repro.schemas.st_edtd import SingleTypeEDTD

        xsd = load_file(str(out))
        assert isinstance(xsd, SingleTypeEDTD)

    def test_lower(self, schemas, tmp_path):
        _, a, b, _ = schemas
        out = tmp_path / "lower.schema"
        assert main(["lower", a, b, "-o", str(out)]) == 0
        lower = load_file(str(out))
        sub = load_file(a)
        from repro.schemas.inclusion import included_in_single_type

        assert included_in_single_type(sub, lower)

    def test_minimize_preserves_language(self, schemas, tmp_path, capsys):
        _, a, _, _ = schemas
        assert main(["minimize", a]) == 0
        out = capsys.readouterr().out
        from repro.schemas.text_format import loads

        assert single_type_equivalent(loads(out), load_file(a))

    def test_binary_command_rejects_non_single_type(self, schemas, capsys):
        _, a, _, g = schemas
        assert main(["union", a, g]) == 2
        assert "not single-type" in capsys.readouterr().err


class TestIncluded:
    def test_yes(self, schemas, tmp_path, capsys):
        _, a, b, _ = schemas
        out = tmp_path / "union.schema"
        main(["union", a, b, "-o", str(out)])
        assert main(["included", a, str(out)]) == 0
        assert "yes" in capsys.readouterr().out

    def test_no(self, schemas, capsys):
        _, a, b, _ = schemas
        assert main(["included", a, b]) == 1
        assert "no" in capsys.readouterr().out


class TestExportXsd:
    def test_export_xsd(self, schemas, tmp_path):
        _, a, _, _ = schemas
        out = tmp_path / "schema.xsd"
        assert main(["export-xsd", a, "-o", str(out)]) == 0
        document = out.read_text()
        assert document.startswith('<?xml version="1.0"?>')
        assert "<xs:schema" in document
        assert '<xs:element name="order"' in document

    def test_export_xsd_stdout(self, schemas, capsys):
        _, a, _, _ = schemas
        assert main(["export-xsd", a]) == 0
        assert "<xs:schema" in capsys.readouterr().out


class TestImportXsdAndMerge:
    def test_import_round_trip(self, schemas, tmp_path, capsys):
        _, a, _, _ = schemas
        xsd_path = tmp_path / "a.xsd"
        assert main(["export-xsd", a, "-o", str(xsd_path)]) == 0
        assert main(["import-xsd", str(xsd_path)]) == 0
        out = capsys.readouterr().out
        from repro.schemas.text_format import loads

        assert single_type_equivalent(loads(out), load_file(a))

    def test_merge_many(self, schemas, tmp_path):
        _, a, b, _ = schemas
        out = tmp_path / "merged.schema"
        assert main(["merge", a, b, a, "-o", str(out)]) == 0
        merged = load_file(str(out))
        from repro.schemas.inclusion import included_in_single_type

        assert included_in_single_type(load_file(a), merged)
        assert included_in_single_type(load_file(b), merged)


class TestCompat:
    def test_backward_compatible(self, schemas, tmp_path, capsys):
        _, a, b, _ = schemas
        union_path = tmp_path / "u.schema"
        main(["union", a, b, "-o", str(union_path)])
        assert main(["compat", a, str(union_path)]) == 0
        out = capsys.readouterr().out
        assert "backward compatible" in out
        assert "only under the NEW schema" in out

    def test_breaking(self, schemas, capsys):
        _, a, b, _ = schemas
        assert main(["compat", a, b]) == 1
        out = capsys.readouterr().out
        assert "breaking" in out
        assert "only under the OLD schema" in out
