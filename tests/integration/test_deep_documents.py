"""Robustness on very deep documents (beyond Python's recursion limit for
naive recursive implementations)."""

from __future__ import annotations

import sys

import pytest

from repro.schemas.edtd import EDTD
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.trees.tree import Tree, unary_tree

DEPTH = 1500
assert DEPTH > sys.getrecursionlimit() // 2  # the test is meaningful


@pytest.fixture(scope="module")
def deep_chain() -> Tree:
    return unary_tree("a" * DEPTH)


@pytest.fixture(scope="module")
def chain_schema() -> SingleTypeEDTD:
    return SingleTypeEDTD(
        alphabet={"a"},
        types={"t"},
        rules={"t": "t?"},
        starts={"t"},
        mu={"t": "a"},
    )


class TestDeepTrees:
    def test_construction(self, deep_chain):
        assert deep_chain.label == "a"

    def test_depth_and_size(self, deep_chain):
        assert deep_chain.depth() == DEPTH
        assert deep_chain.size() == DEPTH

    def test_labels(self, deep_chain):
        assert deep_chain.labels() == {"a"}

    def test_subtree_and_anc_str(self, deep_chain):
        path = (0,) * (DEPTH - 1)
        assert deep_chain.subtree(path).label == "a"
        assert len(deep_chain.anc_str(path)) == DEPTH

    def test_replace_at_deep_path(self, deep_chain):
        path = (0,) * (DEPTH - 1)
        replaced = deep_chain.replace_at(path, Tree("a", [Tree("a")]))
        assert replaced.size() == DEPTH + 1

    def test_map_labels(self, deep_chain):
        mapped = deep_chain.map_labels(lambda _: "b")
        assert mapped.labels() == {"b"}
        assert mapped.depth() == DEPTH

    def test_dom_iteration(self, deep_chain):
        assert sum(1 for _ in deep_chain.dom()) == DEPTH

    def test_to_word(self, deep_chain):
        assert len(deep_chain.to_word()) == DEPTH


class TestDeepValidation:
    def test_top_down_validation(self, chain_schema, deep_chain):
        assert chain_schema.validate_top_down(deep_chain)

    def test_bottom_up_validation(self, chain_schema, deep_chain):
        bottom_up = EDTD(
            alphabet=chain_schema.alphabet,
            types=chain_schema.types,
            rules=chain_schema.rules,
            starts=chain_schema.starts,
            mu=chain_schema.mu,
        )
        assert bottom_up.accepts(deep_chain)
        branchy = deep_chain.replace_at((0,) * 10, Tree("a", [Tree("a"), Tree("a")]))
        assert not bottom_up.accepts(branchy)

    def test_streaming_validation(self, chain_schema, deep_chain):
        from repro.schemas.streaming import validate_events

        events = [("start", "a")] * DEPTH + [("end",)] * DEPTH
        assert validate_events(chain_schema, events)

    def test_typed_witness(self, chain_schema, deep_chain):
        bottom_up = EDTD(
            alphabet=chain_schema.alphabet,
            types=chain_schema.types,
            rules=chain_schema.rules,
            starts=chain_schema.starts,
            mu=chain_schema.mu,
        )
        witness = bottom_up.typed_witness(deep_chain)
        assert witness is not None
        assert witness.size() == DEPTH
