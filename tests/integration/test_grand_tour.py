"""A grand tour: one scenario exercising the whole public API in order.

Living documentation — each step uses the API exactly as a downstream user
would, with assertions pinning the observable behaviour.  The scenario: a
data-integration team merges two partner feeds, ships an XSD, diffs the
versions, rolls out safely, and audits the approximation.
"""

from __future__ import annotations

import random

from repro import (
    EDTD,
    SingleTypeEDTD,
    edtd_union,
    included_in_single_type,
    inclusion_counterexample,
    is_minimal_upper_approximation,
    is_single_type,
    is_single_type_definable,
    maximal_lower_union,
    minimal_upper_approximation,
    minimize_single_type,
    parse_tree,
    single_type_equivalent,
    upper_quality,
    upper_union,
)
from repro.core import check_compatibility, merge_all, merge_report
from repro.schemas import export_xsd, import_xsd, validate_events
from repro.schemas.streaming import events_of_tree
from repro.schemas.text_format import dumps, loads
from repro.trees.generate import sample_tree
from repro.trees.xml_io import from_xml, to_xml


def partner_a() -> SingleTypeEDTD:
    return loads(
        """
        start: f
        f [feed]  -> e*
        e [entry] -> t, m?
        t [title] -> ~
        m [media] -> ~
        """
    )


def partner_b() -> SingleTypeEDTD:
    return loads(
        """
        start: f
        f [feed]  -> e+
        e [entry] -> t, l
        t [title] -> ~
        l [link]  -> ~
        """
    )


def test_grand_tour(tmp_path):
    a, b = partner_a(), partner_b()
    assert is_single_type(a) and is_single_type(b)

    # --- 1. The union is not an XSD; build the optimal one. --------------
    union = edtd_union(a, b)
    assert isinstance(union, EDTD)
    assert not is_single_type_definable(union)
    portal = minimize_single_type(upper_union(a, b))
    assert is_minimal_upper_approximation(portal, union)
    assert included_in_single_type(a, portal)
    assert included_in_single_type(b, portal)

    # --- 2. Quantify and exhibit the slack. ------------------------------
    quality = upper_quality(union, portal, max_size=8)
    assert quality.total_slack() > 0  # mixed-entry feeds are the price
    mixed = from_xml(
        "<feed><entry><title/><media/></entry>"
        "<entry><title/><link/></entry></feed>"
    )
    assert portal.accepts(mixed) and not union.accepts(mixed)
    report = merge_report(a, b, left_name="A", right_name="B")
    assert "not** expressible" in report or "**not** expressible" in report

    # --- 3. Ship it: text format, W3C XSD, round trips. ------------------
    schema_file = tmp_path / "portal.schema"
    schema_file.write_text(dumps(portal))
    assert single_type_equivalent(loads(schema_file.read_text()), portal)
    xsd_document = export_xsd(portal)
    assert single_type_equivalent(import_xsd(xsd_document), portal)

    # --- 4. Validate documents three ways. --------------------------------
    doc = from_xml("<feed><entry><title/><link/></entry></feed>")
    assert portal.accepts(doc)
    assert portal.validate_top_down(doc)
    assert validate_events(portal, events_of_tree(doc))
    assert from_xml(to_xml(doc)) == doc

    # --- 5. Compatibility story for partner A's consumers. ----------------
    compat = check_compatibility(a, portal)
    assert compat.backward_compatible       # every A document stays valid
    assert compat.new_only is not None      # portal admits more
    assert portal.accepts(compat.new_only) and not a.accepts(compat.new_only)
    assert inclusion_counterexample(portal, a) is not None

    # --- 6. Conservative roll-out: maximal lower approximation. -----------
    rollout = minimize_single_type(maximal_lower_union(a, b))
    assert included_in_single_type(a, rollout)
    assert included_in_single_type(rollout, portal)

    # --- 7. A third partner joins: n-ary merge, order-independent. --------
    c = loads(
        """
        start: f
        f [feed]  -> e*
        e [entry] -> t
        t [title] -> ~
        """
    )
    merged_abc = merge_all([a, b, c])
    merged_cba = merge_all([c, b, a])
    assert single_type_equivalent(merged_abc, merged_cba)
    for partner in (a, b, c):
        assert included_in_single_type(partner, merged_abc)

    # --- 8. Fuzz the final artifact with sampled documents. ---------------
    rng = random.Random(2026)
    for _ in range(10):
        document = sample_tree(merged_abc, rng, target_size=12)
        assert merged_abc.accepts(document)
        assert validate_events(merged_abc, events_of_tree(document))

    # --- 9. And the paper's fixed point: approximating an XSD is free. ----
    assert single_type_equivalent(
        minimal_upper_approximation(merged_abc), merged_abc
    )
