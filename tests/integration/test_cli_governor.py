"""CLI integration tests for the resource-governor flags and exit codes.

Contract: ``0`` success, ``1`` negative answer, ``2`` bad input / I/O,
``3`` resource budget exceeded — and every failure prints exactly one
``error: ...`` line on stderr.
"""

from __future__ import annotations

import pytest

from repro.cli import EXIT_BAD_INPUT, EXIT_BUDGET_EXCEEDED, main
from repro.families.hard import theorem_3_2_family
from repro.schemas.text_format import dumps

ORDERS = """
start: o
o [order] -> i+
i [item]  -> p
p [price] -> ~
"""


@pytest.fixture
def orders(tmp_path):
    path = tmp_path / "orders.schema"
    path.write_text(ORDERS)
    return str(path)


@pytest.fixture
def hard(tmp_path):
    """A schema whose minimal upper approximation needs ~2^15 types."""
    path = tmp_path / "hard.schema"
    path.write_text(dumps(theorem_3_2_family(14)))
    return str(path)


class TestBudgetFlags:
    def test_max_states_exits_3(self, hard, capsys):
        assert main(["--max-states", "10000", "to-xsd", hard]) == EXIT_BUDGET_EXCEEDED
        err = capsys.readouterr().err
        assert err.startswith("error: budget exceeded (max-states)")
        assert err.count("\n") == 1  # exactly one diagnostic line

    def test_timeout_and_max_states_exit_3(self, hard, capsys):
        rc = main(["--timeout", "1", "--max-states", "10000", "to-xsd", hard])
        assert rc == EXIT_BUDGET_EXCEEDED
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "states explored" in err

    def test_max_steps_exits_3(self, hard, capsys):
        assert main(["--max-steps", "500", "to-xsd", hard]) == EXIT_BUDGET_EXCEEDED
        assert "max-steps" in capsys.readouterr().err

    def test_generous_budget_matches_ungoverned(self, orders, tmp_path, capsys):
        governed = tmp_path / "governed.schema"
        plain = tmp_path / "plain.schema"
        assert main(["--timeout", "120", "to-xsd", orders, "-o", str(governed)]) == 0
        assert main(["to-xsd", orders, "-o", str(plain)]) == 0
        assert governed.read_text() == plain.read_text()

    def test_flags_without_trip_are_transparent(self, orders, capsys):
        assert main(["--max-states", "100000", "info", orders]) == 0
        out = capsys.readouterr().out
        assert "single-type:  True" in out

    def test_negative_timeout_is_bad_input(self, orders, capsys):
        assert main(["--timeout", "-1", "info", orders]) == EXIT_BAD_INPUT
        assert capsys.readouterr().err.startswith("error:")


class TestBadInputExitCode:
    def test_missing_schema_file_exits_2(self, capsys):
        assert main(["info", "/nonexistent/path.schema"]) == EXIT_BAD_INPUT
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_malformed_schema_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.schema"
        bad.write_text("this is not a schema\n")
        assert main(["info", str(bad)]) == EXIT_BAD_INPUT
        assert capsys.readouterr().err.startswith("error:")

    def test_hostile_xml_document_exits_2(self, orders, tmp_path, capsys):
        doc = tmp_path / "bomb.xml"
        doc.write_text(
            '<!DOCTYPE order [<!ENTITY a "aaaa">]>\n<order><item><price/></item></order>'
        )
        assert main(["validate", orders, str(doc)]) == EXIT_BAD_INPUT
        err = capsys.readouterr().err
        assert "DTD and entity declarations are rejected" in err
        assert "line 1" in err
