"""Meta-tests: DESIGN.md's inventory and experiment index stay true.

Documentation that drifts from the code is worse than none; these tests
fail when a module or bench target named in DESIGN.md disappears, or when
a benchmark file exists without a DESIGN entry.
"""

from __future__ import annotations

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parents[2]
DESIGN = (ROOT / "DESIGN.md").read_text()


def test_referenced_bench_targets_exist():
    targets = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", DESIGN))
    assert targets, "DESIGN.md must reference bench targets"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_every_bench_file_is_indexed_or_extension():
    indexed = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", DESIGN))
    on_disk = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
    unindexed = on_disk - indexed
    # Extensions are allowed to live outside the per-experiment index only
    # if DESIGN's extension table names their module; keep the set small
    # and explicit:
    allowed_unindexed = {
        "bench_witness.py",    # EXP-WITNESS (extension, EXPERIMENTS.md)
        "bench_ablation.py",   # EXP-ABLATION (extension, EXPERIMENTS.md)
    }
    assert unindexed <= allowed_unindexed, unindexed - allowed_unindexed


def test_referenced_modules_exist():
    modules = set(re.findall(r"`((?:strings|trees|schemas|tree_automata|closure|core|families)/\w+\.py)`", DESIGN))
    assert modules
    for module in modules:
        assert (ROOT / "src" / "repro" / module).exists(), module


def test_experiment_ids_appear_in_bench_output_format():
    """Every EXP id in DESIGN's index has a bench module whose EXPERIMENT
    constant starts with that id (so the reproduction tables are named
    consistently)."""
    ids = set(re.findall(r"\| (EXP-[\w.]+|FIG-\d) \|", DESIGN))
    assert ids
    bench_text = "\n".join(
        p.read_text() for p in (ROOT / "benchmarks").glob("bench_*.py")
    )
    # FIG-3 is reproduced by property tests only (its DESIGN row says
    # "covered by tests"), so it has no bench table.
    missing = {
        exp_id
        for exp_id in ids
        if exp_id not in bench_text and exp_id != "FIG-3"
    }
    assert "FIG-1" in bench_text
    assert not missing, missing


def test_paper_match_statement_present():
    assert "No title collision" in DESIGN or "title-collision" in DESIGN.lower()
