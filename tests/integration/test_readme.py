"""The README's code and claims, executed."""

from __future__ import annotations

import pathlib
import re

README = pathlib.Path(__file__).resolve().parents[2] / "README.md"


def test_quickstart_block_runs():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.DOTALL)
    assert blocks, "README must contain a python quickstart block"
    namespace: dict = {}
    exec(blocks[0], namespace)  # noqa: S102 - executing our own README
    merged = namespace["merged"]
    from repro.trees.tree import parse_tree

    assert merged.accepts(parse_tree("order(item(price), item(reason))"))


def test_cli_commands_listed_in_readme_exist():
    from repro.cli import build_parser

    text = README.read_text()
    match = re.search(r"`python -m repro \{([^}]*)\}`", text)
    assert match, "README must list the CLI commands"
    listed = {c.strip() for c in match.group(1).replace("\n", " ").split(",")}
    parser = build_parser()
    subparsers = next(
        action for action in parser._actions  # noqa: SLF001
        if hasattr(action, "choices") and action.choices
    )
    actual = set(subparsers.choices)
    assert listed == actual, listed ^ actual


def test_documented_modules_exist():
    import importlib

    text = README.read_text()
    for module in re.findall(r"`(repro(?:\.\w+)+)`", text):
        # Strip trailing attribute accesses: import the longest importable
        # prefix and getattr the rest.
        parts = module.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
                break
            except ImportError:
                continue
        else:
            raise AssertionError(f"cannot import {module}")
        for attr in parts[cut:]:
            obj = getattr(obj, attr)


def test_referenced_files_exist():
    root = README.parent
    text = README.read_text()
    for path in re.findall(r"`((?:examples|docs|benchmarks)/[\w./-]+)`", text):
        assert (root / path).exists(), path
    assert (root / "DESIGN.md").exists()
    assert (root / "EXPERIMENTS.md").exists()
