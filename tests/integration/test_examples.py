"""Smoke tests: every example script runs to completion and prints the
headline facts it claims."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Minimal upper XSD-approximation" in out
    assert "extra documents" in out


def test_schema_integration():
    out = run_example("schema_integration.py")
    assert "verified: the portal schema is THE minimal upper" in out
    assert "extra documents" in out


def test_relaxng_to_xsd():
    out = run_example("relaxng_to_xsd.py")
    assert "is it already an XSD (single-type)? False" in out
    assert "is its *language* single-type definable? False" in out
    assert "verified: no XSD between" in out


def test_schema_evolution():
    out = run_example("schema_evolution.py")
    assert "Router XSD" in out
    assert "Roll-out XSD" in out


def test_merge_report():
    out = run_example("merge_report.py")
    assert "# Merge report: rss | atom" in out
    assert "# Difference report: orders-v2 - orders-v1" in out
    assert "<xs:schema" in out


def test_all_examples_covered():
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    tested = {
        "quickstart.py",
        "schema_integration.py",
        "relaxng_to_xsd.py",
        "schema_evolution.py",
        "merge_report.py",
    }
    assert scripts == tested, scripts ^ tested
