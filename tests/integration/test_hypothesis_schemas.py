"""Hypothesis-driven schema generation: shrinking fuzz over the pipeline.

Complements the seeded ``random.Random`` fuzz in ``test_fuzz_properties``
with hypothesis strategies (minimal counterexamples on failure).
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import edtd_union
from repro.schemas.type_automaton import is_single_type
from tests.strategies import examples, single_type_edtds


@settings(max_examples=examples(25), deadline=None)
@given(single_type_edtds())
def test_upper_of_single_type_is_identity(schema):
    upper = minimal_upper_approximation(schema)
    assert is_single_type(upper)
    assert single_type_equivalent(upper, schema)


@settings(max_examples=examples(25), deadline=None)
@given(single_type_edtds())
def test_minimize_preserves_language(schema):
    minimal = minimize_single_type(schema)
    assert single_type_equivalent(minimal, schema)
    assert len(minimal.types) <= max(len(schema.reduced().types), 1)


@settings(max_examples=examples(20), deadline=None)
@given(single_type_edtds(), single_type_edtds())
def test_union_upper_contains_both(left, right):
    upper = upper_union(left, right)
    assert included_in_single_type(left, upper)
    assert included_in_single_type(right, upper)


@settings(max_examples=examples(20), deadline=None)
@given(single_type_edtds(), single_type_edtds())
def test_union_upper_idempotent(left, right):
    upper = upper_union(left, right)
    again = minimal_upper_approximation(edtd_union(left, right))
    assert single_type_equivalent(upper, again)


@settings(max_examples=examples(20), deadline=None)
@given(single_type_edtds())
def test_round_trip_text_format(schema):
    from repro.schemas.text_format import dumps, loads

    back = loads(dumps(schema))
    assert single_type_equivalent(back, schema)


@settings(max_examples=examples(20), deadline=None)
@given(single_type_edtds())
def test_round_trip_dfa_xsd(schema):
    from repro.schemas.dfa_xsd import from_single_type

    back = from_single_type(schema.reduced()).to_single_type()
    assert single_type_equivalent(back, schema)
