"""Hypothesis-driven schema generation: shrinking fuzz over the pipeline.

Complements the seeded ``random.Random`` fuzz in ``test_fuzz_properties``
with hypothesis strategies (minimal counterexamples on failure).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.upper import minimal_upper_approximation, upper_union
from repro.schemas.edtd import EDTD
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.strings.regex import EPSILON, Opt, Plus, Regex, Star, Sym, concat, union

LABELS = ["a", "b", "c"]


@st.composite
def single_type_edtds(draw) -> SingleTypeEDTD:
    """Layered single-type EDTDs over a 3-letter alphabet.

    Types are layered t0 > t1 > ... (acyclic), each content model uses at
    most one later type per label (EDC by construction), optionally with a
    recursive self-edge.
    """
    num_types = draw(st.integers(min_value=1, max_value=5))
    types = [f"t{i}" for i in range(num_types)]
    mu = {t: LABELS[i % len(LABELS)] for i, t in enumerate(types)}
    rules: dict = {}
    for index, type_ in enumerate(types):
        later = types[index + 1:]
        candidates: dict[str, str] = {}
        for other in later:
            candidates.setdefault(mu[other], other)
        if draw(st.booleans()):
            candidates[mu[type_]] = type_  # self-recursion
        chosen = draw(
            st.lists(
                st.sampled_from(sorted(candidates.values())) if candidates else st.nothing(),
                max_size=3,
            )
        ) if candidates else []
        parts: list[Regex] = []
        for child in chosen:
            modifier = draw(st.sampled_from(["plain", "star", "plus", "opt"]))
            atom: Regex = Sym(child)
            if modifier == "star":
                atom = Star(atom)
            elif modifier == "plus":
                atom = Plus(atom)
            elif modifier == "opt":
                atom = Opt(atom)
            parts.append(atom)
        expr = concat(*parts) if parts else EPSILON
        if draw(st.booleans()):
            expr = union(expr, EPSILON)
        rules[type_] = expr
    schema = SingleTypeEDTD(
        alphabet=set(LABELS),
        types=set(types),
        rules=rules,
        starts={types[0]},
        mu=mu,
    ).reduced()
    if not schema.types:
        schema = SingleTypeEDTD(
            alphabet=set(LABELS),
            types={"t0"},
            rules={"t0": "~"},
            starts={"t0"},
            mu={"t0": LABELS[0]},
        )
    return schema


@settings(max_examples=25, deadline=None)
@given(single_type_edtds())
def test_upper_of_single_type_is_identity(schema):
    upper = minimal_upper_approximation(schema)
    assert is_single_type(upper)
    assert single_type_equivalent(upper, schema)


@settings(max_examples=25, deadline=None)
@given(single_type_edtds())
def test_minimize_preserves_language(schema):
    minimal = minimize_single_type(schema)
    assert single_type_equivalent(minimal, schema)
    assert len(minimal.types) <= max(len(schema.reduced().types), 1)


@settings(max_examples=20, deadline=None)
@given(single_type_edtds(), single_type_edtds())
def test_union_upper_contains_both(left, right):
    upper = upper_union(left, right)
    assert included_in_single_type(left, upper)
    assert included_in_single_type(right, upper)


@settings(max_examples=20, deadline=None)
@given(single_type_edtds(), single_type_edtds())
def test_union_upper_idempotent(left, right):
    upper = upper_union(left, right)
    again = minimal_upper_approximation(edtd_union(left, right))
    assert single_type_equivalent(upper, again)


@settings(max_examples=20, deadline=None)
@given(single_type_edtds())
def test_round_trip_text_format(schema):
    from repro.schemas.text_format import dumps, loads

    back = loads(dumps(schema))
    assert single_type_equivalent(back, schema)


@settings(max_examples=20, deadline=None)
@given(single_type_edtds())
def test_round_trip_dfa_xsd(schema):
    from repro.schemas.dfa_xsd import from_single_type

    back = from_single_type(schema.reduced()).to_single_type()
    assert single_type_equivalent(back, schema)
