"""Golden end-to-end pipelines with pinned expected artifacts.

These tests freeze the observable outcomes of the full pipeline on the
paper's own running example and on a general-EDTD intersection, guarding
against silent regressions in any layer.
"""

from __future__ import annotations

from repro.core.decision import is_minimal_upper_approximation, is_single_type_definable
from repro.core.upper import minimal_upper_approximation
from repro.families.hard import example_2_6
from repro.schemas.edtd import EDTD
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import edtd_intersection
from repro.schemas.text_format import dumps, loads
from repro.schemas.type_automaton import is_single_type
from repro.trees.generate import enumerate_all_trees, enumerate_trees
from repro.trees.tree import parse_tree


class TestExample26Pipeline:
    """The paper's Example 2.6 through the whole Section 3 pipeline."""

    def test_full_pipeline_artifacts(self):
        edtd = example_2_6()
        assert not is_single_type(edtd)
        # Its language *is* single-type definable (merging the two b-types
        # into one with the union content model loses nothing here):
        assert is_single_type_definable(edtd)
        upper = minimize_single_type(minimal_upper_approximation(edtd))
        assert is_minimal_upper_approximation(upper, edtd)
        # Pinned shape: 3 types survive minimization (a-type, two b-roles
        # merge... or stay — pin whatever is current and correct):
        assert len(upper.types) == 2
        # Pinned language facts:
        assert upper.accepts(parse_tree("a(b)"))
        assert upper.accepts(parse_tree("a(a(b))"))
        assert not upper.accepts(parse_tree("a"))
        assert not upper.accepts(parse_tree("b"))
        # Round trip through the text format (semantic: union operand
        # order in the rendered regexes is not canonical):
        from repro.schemas.inclusion import single_type_equivalent

        assert single_type_equivalent(loads(dumps(upper)), upper)

    def test_language_agrees_extensionally(self, ab_universe_4):
        edtd = example_2_6()
        upper = minimal_upper_approximation(edtd)
        for tree in ab_universe_4:
            assert upper.accepts(tree) == edtd.accepts(tree), tree


class TestGeneralEdtdIntersection:
    """Intersection of two *non-single-type* EDTDs, verified extensionally
    (the §3.1 route: product EDTD, then Construction 3.1 if needed)."""

    def _left(self) -> EDTD:
        # Root a with children all-b OR exactly two a-leaf children.
        return EDTD(
            alphabet={"a", "b"},
            types={"r1", "r2", "x", "y"},
            rules={"r1": "x*", "r2": "y, y", "x": "~", "y": "~"},
            starts={"r1", "r2"},
            mu={"r1": "a", "r2": "a", "x": "b", "y": "a"},
        )

    def _right(self) -> EDTD:
        # Root a with one or two children of any label.
        return EDTD(
            alphabet={"a", "b"},
            types={"r", "ca", "cb"},
            rules={"r": "(ca | cb) | (ca | cb), (ca | cb)", "ca": "~", "cb": "~"},
            starts={"r"},
            mu={"r": "a", "ca": "a", "cb": "b"},
        )

    def test_intersection_extensional(self, ab_universe_4):
        left, right = self._left(), self._right()
        product = edtd_intersection(left, right)
        for tree in ab_universe_4:
            expected = left.accepts(tree) and right.accepts(tree)
            assert product.accepts(tree) == expected, tree

    def test_upper_of_product(self, ab_universe_4):
        left, right = self._left(), self._right()
        product = edtd_intersection(left, right)
        upper = minimal_upper_approximation(product)
        assert is_minimal_upper_approximation(upper, product)
        members = {t for t in ab_universe_4 if product.accepts(t)}
        for tree in members:
            assert upper.accepts(tree), tree

    def test_pinned_members(self):
        left, right = self._left(), self._right()
        product = edtd_intersection(left, right)
        members = enumerate_trees(product, 3)
        assert members == [
            parse_tree("a(b)"),
            parse_tree("a(a, a)"),
            parse_tree("a(b, b)"),
        ]
