"""End-to-end tests: one test (class) per paper claim.

These are the executable statements of the paper's theorems; EXPERIMENTS.md
references them by name.
"""

from __future__ import annotations

import pytest

from repro.closure.closure import bounded_closure
from repro.closure.properties import exchange_violation
from repro.core.decision import (
    Maximality,
    is_lower_approximation,
    is_maximal_lower_approximation,
    is_minimal_upper_approximation,
    is_single_type_definable,
)
from repro.core.lower import maximal_lower_union, non_violating
from repro.core.quality import upper_quality
from repro.core.upper import (
    minimal_upper_approximation,
    upper_complement,
    upper_difference,
    upper_intersection,
    upper_union,
)
from repro.families.hard import (
    theorem_3_2_family,
    theorem_3_6_family,
    theorem_3_8_family,
    theorem_4_3_d1_d2,
    theorem_4_3_xn,
    theorem_4_11_dtd,
    theorem_4_11_xn,
)
from repro.schemas.inclusion import included_in_single_type, single_type_equivalent
from repro.schemas.minimize import minimize_single_type
from repro.schemas.ops import complement_edtd, difference_edtd, edtd_union
from repro.schemas.st_edtd import SingleTypeEDTD
from repro.schemas.type_automaton import is_single_type
from repro.tree_automata.inclusion import edtd_equivalent, edtd_includes
from repro.trees.generate import enumerate_all_trees, enumerate_trees
from repro.trees.tree import parse_tree, unary_tree


class TestTheorem211:
    """A regular tree language is ST-definable iff closed under
    ancestor-guarded subtree exchange."""

    def test_st_language_closed(self, store_schema):
        members = enumerate_trees(store_schema, 7)
        closure = bounded_closure(members, max_size=7)
        assert set(closure) == set(members)

    def test_non_st_language_not_closed(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        assert exchange_violation(union, max_size=5) is not None
        assert not is_single_type_definable(union)


class TestTheorem32:
    """Unique minimal upper approximation; EXPTIME; 2^n blow-up family."""

    def test_uniqueness_via_canonical_minimization(self):
        # Two routes to the approximation of the same language must agree.
        d1, d2 = theorem_4_3_d1_d2()
        union1 = edtd_union(d1, d2)
        union2 = edtd_union(d2, d1)
        u1 = minimal_upper_approximation(union1)
        u2 = minimal_upper_approximation(union2)
        assert single_type_equivalent(u1, u2)
        m1 = minimize_single_type(u1)
        m2 = minimize_single_type(u2)
        assert len(m1.types) == len(m2.types)

    def test_approximation_is_closure(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = minimal_upper_approximation(union)
        members = enumerate_trees(union, 6)
        closure = bounded_closure(members, max_size=6)
        upper_members = set(enumerate_trees(upper, 5))
        assert upper_members == {t for t in closure if t.size() <= 5}

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_exponential_blowup_unavoidable(self, n):
        edtd = theorem_3_2_family(n)
        upper = minimal_upper_approximation(edtd, minimize=True)
        assert len(upper.types) == 2 ** (n + 1)


class TestTheorem35:
    """Deciding minimal-upper-approximation-ness."""

    def test_positive_and_negative_instances(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        assert is_minimal_upper_approximation(upper, union)
        assert is_minimal_upper_approximation(minimize_single_type(upper), union)
        assert not is_minimal_upper_approximation(d1, union)


class TestTheorem36:
    """Union: unique minimal upper approximation in O(|D1||D2|); n^2 family."""

    def test_union_approximation_minimal(self):
        d1, d2 = theorem_3_6_family(2)
        upper = upper_union(d1, d2)
        assert is_minimal_upper_approximation(upper, edtd_union(d1, d2))

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_quadratic_lower_bound(self, n):
        d1, d2 = theorem_3_6_family(n)
        upper = upper_union(d1, d2, minimize=True)
        assert len(upper.types) >= n * n

    def test_approximation_strictly_contains_union_when_not_definable(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        quality = upper_quality(union, upper, max_size=6)
        assert quality.total_slack() > 0


class TestProposition37Theorem38:
    """Intersections of stEDTDs are exactly ST-definable."""

    def test_intersection_exact(self):
        d1, d2 = theorem_3_8_family(2)
        inter = upper_intersection(d1, d2)
        assert is_single_type(inter)
        assert inter.accepts(unary_tree("a" * 15))
        assert not inter.accepts(unary_tree("a" * 10))

    def test_intersection_is_closed_under_exchange(self):
        d1, d2 = theorem_3_8_family(2)
        inter = upper_intersection(d1, d2)
        assert exchange_violation(inter, max_size=16) is None


class TestTheorem39:
    """Complement: minimal upper approximation in PTIME."""

    def test_complement_edtd_is_exact_complement(self, ab_pair_schema, ab_universe_4):
        comp = complement_edtd(ab_pair_schema)
        for tree in ab_universe_4:
            assert comp.accepts(tree) == (not ab_pair_schema.accepts(tree))

    def test_upper_complement_contains_complement(self, ab_pair_schema):
        comp = complement_edtd(ab_pair_schema)
        upper = upper_complement(ab_pair_schema)
        assert included_in_single_type(comp, upper)
        assert is_minimal_upper_approximation(upper, comp)

    def test_subsets_stay_small(self, store_schema):
        # The paper's polynomiality argument: reachable subsets of the
        # complement EDTD's type automaton have size <= 2.
        from repro.schemas.type_automaton import type_automaton
        from repro.strings.determinize import determinize

        comp = complement_edtd(store_schema).reduced()
        subset_dfa = determinize(type_automaton(comp))
        for subset in subset_dfa.states:
            assert len(subset) <= 2, subset


class TestTheorem310:
    """Difference: minimal upper approximation in PTIME."""

    def test_difference_edtd_exact(self, ab_star_schema, ab_pair_schema, ab_universe_4):
        diff = difference_edtd(ab_star_schema, ab_pair_schema)
        for tree in ab_universe_4:
            assert diff.accepts(tree) == (
                ab_star_schema.accepts(tree) and not ab_pair_schema.accepts(tree)
            )

    def test_upper_difference_minimal(self, ab_star_schema, ab_pair_schema):
        diff = difference_edtd(ab_star_schema, ab_pair_schema)
        upper = upper_difference(ab_star_schema, ab_pair_schema)
        assert is_minimal_upper_approximation(upper, diff)

    def test_subsets_stay_small(self, ab_star_schema, ab_pair_schema):
        from repro.schemas.type_automaton import type_automaton
        from repro.strings.determinize import determinize

        diff = difference_edtd(ab_star_schema, ab_pair_schema).reduced()
        subset_dfa = determinize(type_automaton(diff))
        for subset in subset_dfa.states:
            assert len(subset) <= 2, subset


class TestTheorem43:
    """Infinitely many maximal lower approximations of a union."""

    @pytest.mark.parametrize("n", [1, 2])
    def test_xn_maximal_lower(self, n):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        xn = theorem_4_3_xn(n)
        assert is_lower_approximation(xn, union)
        verdict = is_maximal_lower_approximation(xn, union, max_size=5)
        assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND

    def test_xn_pairwise_inequivalent(self):
        schemas = [theorem_4_3_xn(n) for n in (1, 2, 3)]
        for i, left in enumerate(schemas):
            for right in schemas[i + 1:]:
                assert not single_type_equivalent(left, right)


class TestTheorem48:
    """L(D1) | nv(D2, D1): unique maximal lower approximation containing D1."""

    def test_lower_containing_d1(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        lower = maximal_lower_union(d1, d2)
        assert included_in_single_type(d1, lower)
        assert is_lower_approximation(lower, union)
        verdict = is_maximal_lower_approximation(lower, union, max_size=5)
        assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND

    def test_equals_d1_union_nv(self):
        d1, d2 = theorem_4_3_d1_d2()
        nv = non_violating(d2, d1)
        lower = maximal_lower_union(d1, d2)
        assert edtd_equivalent(edtd_union(d1.reduced(), nv), lower)


class TestTheorem411:
    """Infinitely many maximal lower approximations of a complement."""

    @pytest.mark.parametrize("n", [1, 2])
    def test_xn_maximal_lower_of_complement(self, n):
        dtd = theorem_4_11_dtd()
        complement = complement_edtd(SingleTypeEDTD.from_edtd(dtd.to_edtd()))
        xn = theorem_4_11_xn(n)
        assert is_lower_approximation(xn, complement)
        verdict = is_maximal_lower_approximation(xn, complement, max_size=5)
        assert verdict.outcome is Maximality.MAXIMAL_WITHIN_BOUND


class TestLemma33:
    """PTIME inclusion EDTD into stEDTD agrees with the exact procedure."""

    def test_on_paper_instances(self):
        d1, d2 = theorem_4_3_d1_d2()
        union = edtd_union(d1, d2)
        upper = upper_union(d1, d2)
        assert included_in_single_type(union, upper) == edtd_includes(upper, union)
        assert included_in_single_type(upper, d1) == edtd_includes(d1, upper)
